#include "tmk/protocol.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "dsm/system.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::tmk {

// kCtl, trace_page() and trace_word() are inherited from policy::PolicyEngine.

#define AECDSM_TRACE(pg, stream_expr)                    \
  do {                                                   \
    if ((pg) == trace_page()) AECDSM_DEBUG(stream_expr); \
  } while (0)

TmProtocol::TmProtocol(dsm::Machine& m, ProcId self, std::shared_ptr<TmShared> shared)
    : policy::PolicyEngine(m, self, shared->policy),
      sh_(std::move(shared)),
      vt_(static_cast<std::size_t>(m.nprocs()), 0),
      pages_(m.num_pages()) {
  if (sh_->nodes.empty()) {
    sh_->nodes.resize(static_cast<std::size_t>(m.nprocs()), nullptr);
    sh_->barrier.merged_vt.assign(static_cast<std::size_t>(m.nprocs()), 0);
  }
  sh_->nodes[static_cast<std::size_t>(self)] = this;
  dsm::init_round_robin_validity(m, self);
  for (PageId pg = 0; pg < m.num_pages(); ++pg) {
    if (static_cast<ProcId>(pg % static_cast<PageId>(m.nprocs())) == self) {
      pages_[pg].ever_valid = true;
    }
  }
}

TmProtocol::~TmProtocol() = default;

std::uint64_t TmProtocol::vt_sum(const VectorTime& vt) {
  std::uint64_t s = 0;
  for (const std::uint32_t v : vt) s += v;
  return s;
}

void TmProtocol::end_interval() {
  ++vt_[static_cast<std::size_t>(self_)];
  // The interval's write notices cover both the pages faulted during the
  // interval and the pages still carrying un-diffed modifications (silent
  // re-writes of an unprotected dirty page stay visible this way).
  std::set<PageId> pages = dirty_set_;
  pages.insert(interval_writes_.begin(), interval_writes_.end());
  interval_writes_.clear();
  if (!pages.empty()) {
    NoticeEntry e;
    e.writer = self_;
    e.vt = vt_;
    e.pages.assign(pages.begin(), pages.end());
    seen_intervals_.insert({self_, vt_[static_cast<std::size_t>(self_)]});
    log_.push_back(std::move(e));
  }
}

bool TmProtocol::absorb_entry(const NoticeEntry& e) {
  const auto key = std::make_pair(e.writer, e.vt[static_cast<std::size_t>(e.writer)]);
  if (!seen_intervals_.insert(key).second) return false;
  log_.push_back(e);
  return true;
}

void TmProtocol::apply_entry_invalidations(const NoticeEntry& e) {
  if (e.writer == self_) return;
  for (const PageId pg : e.pages) {
    AECDSM_TRACE(pg, "p" << self_ << " notice pg" << pg << " writer=p" << e.writer
                         << " ivt=" << e.vt[static_cast<std::size_t>(e.writer)]);
    PageState& ps = page(pg);
    ps.pending.insert(e.writer);
    mem::PageFrame& f = store().frame(pg);
    if (f.valid) {
      f.valid = false;
      ctx().invalidate_cache_page(pg);
    }
    invalidations_pending_cost_ += m_.params().list_processing_per_elem;
  }
}

// --------------------------------------------------------------------------
// Faults
// --------------------------------------------------------------------------

void TmProtocol::on_read_fault(PageId pg) { handle_fault(pg, false); }
void TmProtocol::on_write_fault(PageId pg) { handle_fault(pg, true); }

void TmProtocol::handle_fault(PageId pg, bool is_write) {
  proc().advance(m_.params().interrupt_cycles, sim::Bucket::kData);
  resolve_page(pg);
  if (is_write) {
    PageState& ps = page(pg);
    mem::PageFrame& f = store().frame(pg);
    if (f.write_protected) {
      AECDSM_CHECK_MSG(!f.has_twin(), "protected page with a live twin");
      proc().advance(m_.params().twin_create_cycles(), sim::Bucket::kData);
      store().make_twin(pg);
      ps.dirty = true;
      dirty_set_.insert(pg);
      interval_writes_.insert(pg);
      trace_counter(trace::names::kDiffOutstanding, proc().now(),
                    dirty_set_.size());
      f.write_protected = false;
    }
  }
}

void TmProtocol::resolve_page(PageId pg) {
  PageState& ps = page(pg);
  mem::PageFrame& f = store().frame(pg);
  if (f.valid) return;

  if (!ps.ever_valid) {
    // Cold miss: fetch a base copy (plus its holder's pending-writer set)
    // from the page's static home.
    ++m_.node(self_).faults.cold_faults;
    const ProcId h = static_cast<ProcId>(pg % static_cast<PageId>(m_.nprocs()));
    AECDSM_CHECK(h != self_);
    auto hpend = std::make_shared<std::vector<ProcId>>();
    auto hupto = std::make_shared<std::map<ProcId, std::size_t>>();
    fetch_page_from_home(
        pg, h, sim::Bucket::kData,
        [this, h, pg, hpend, hupto](std::vector<Word>& buf) {
          TmProtocol& home = peer(h);
          auto span = home.store().page_span(pg);
          buf.assign(span.begin(), span.end());
          hpend->assign(home.page(pg).pending.begin(), home.page(pg).pending.end());
          // The copied frame reflects every diff the home consumed — and
          // every write the home itself ever made. The requester must
          // resume at the same per-writer indexes (including the home's own
          // full stored history) or it would re-apply older diffs over the
          // newer base.
          *hupto = home.page(pg).fetched_upto;
          (*hupto)[h] = home.page(pg).stored.size();
        },
        /*landed=*/nullptr);
    for (const auto& [w, upto] : *hupto) {
      if (w != self_) ps.fetched_upto[w] = upto;
    }
    for (const ProcId w : *hpend) {
      if (w != self_) ps.pending.insert(w);
    }
    ps.ever_valid = true;
    ctx().invalidate_cache_page(pg);
  }

  fetch_pending_diffs(pg, sim::Bucket::kData);
  f.valid = true;
}

void TmProtocol::fetch_pending_diffs(PageId pg, sim::Bucket bucket) {
  PageState& ps = page(pg);
  if (ps.pending.empty()) return;
  const auto& params = m_.params();

  const std::vector<ProcId> writers(ps.pending.begin(), ps.pending.end());
  struct Fetch {
    std::shared_ptr<std::vector<StoredDiff>> diffs =
        std::make_shared<std::vector<StoredDiff>>();
    std::size_t new_upto = 0;
  };
  std::vector<Fetch> fx(writers.size());
  int pending_rpcs = static_cast<int>(writers.size());

  proc().advance(params.message_overhead * writers.size(), bucket);
  proc().sync();
  for (std::size_t i = 0; i < writers.size(); ++i) {
    const ProcId w = writers[i];
    const std::size_t after = ps.fetched_upto[w];
    Fetch& f = fx[i];
    post_dynamic(
        self_, w, kCtl,
        [this, w, pg, after, &f] {
          Cycles cost = 0;
          *f.diffs = peer(w).serve_diffs(pg, after, cost);
          f.new_upto = after + f.diffs->size();
          return cost;
        },
        [this, w, pg, &f, &pending_rpcs] {
          std::size_t bytes = kCtl;
          for (const StoredDiff& d : *f.diffs) bytes += 16 + d.diff.encoded_bytes();
          post_dynamic(
              w, self_, bytes,
              [this] { return m_.params().list_processing_per_elem * 2; },
              [this, &pending_rpcs] {
                --pending_rpcs;
                proc().poke();
              });
        });
  }
  proc().wait(bucket, [&pending_rpcs] { return pending_rpcs == 0; });
  if (pg == trace_page()) {
    std::ostringstream os;
    for (std::size_t i = 0; i < writers.size(); ++i) {
      os << " w" << writers[i] << ":got" << fx[i].diffs->size() << "->" << fx[i].new_upto;
    }
    AECDSM_DEBUG("p" << self_ << " fetched pg" << pg << os.str());
  }

  // Apply in a linearization of happens-before (vector-clock sums are
  // monotone along every causal chain).
  std::vector<const StoredDiff*> all;
  for (const Fetch& f : fx) {
    for (const StoredDiff& d : *f.diffs) all.push_back(&d);
  }
  if (ps.word_tag.empty()) {
    ps.word_tag.assign(params.words_per_page(), DiffTag{});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const StoredDiff* a, const StoredDiff* b) { return a->tag < b->tag; });
  for (const StoredDiff* d : all) {
    if (pg == trace_page()) {
      std::ostringstream runs;
      long w16 = -1;
      for (const auto& r : d->diff.runs()) {
        runs << " @" << r.word_offset << "+" << r.words.size();
        if (r.word_offset <= 16 && 16 < r.word_offset + r.words.size())
          w16 = static_cast<long>(r.words[16 - r.word_offset]);
      }
      AECDSM_DEBUG("p" << self_ << " tm-apply pg" << pg << " tag=" << d->tag
                       << " w16=" << w16 << runs.str());
    }
    const Cycles c = params.diff_apply_cycles(d->diff.changed_words());
    const Cycles trace_t0 = proc().now();
    proc().advance(c, bucket);
    if (trace::Recorder* tr = m_.recorder()) {
      tr->span(self_, trace::Category::kDiff, trace::names::kDiffApply,
               trace_t0, proc().now(), "page", pg);
    }
    mem::PageFrame& f = store().frame(pg);
    // Word-wise application: never let an older diff revert a word a newer
    // one already wrote (see PageState::word_tag). The twin mirrors the
    // frame so this node's own diffs never encode merged remote words.
    for (const mem::Diff::Run& run : d->diff.runs()) {
      for (std::size_t k = 0; k < run.words.size(); ++k) {
        const std::size_t w = run.word_offset + k;
        if (ps.word_tag[w] > d->tag) continue;
        ps.word_tag[w] = d->tag;
        f.data[w] = run.words[k];
        if (f.has_twin()) (*f.twin)[w] = run.words[k];
      }
    }
    ++dstats_.diffs_applied;
    dstats_.apply_cycles += c;
  }
  proc().sync();
  for (std::size_t i = 0; i < writers.size(); ++i) {
    ps.fetched_upto[writers[i]] = fx[i].new_upto;
  }
  ps.pending.clear();
  ctx().invalidate_cache_page(pg);
}

std::vector<TmProtocol::StoredDiff> TmProtocol::serve_diffs(PageId pg, std::size_t after,
                                                            Cycles& cost) {
  PageState& ps = page(pg);
  mem::PageFrame& f = store().frame(pg);
  AECDSM_TRACE(pg, "p" << self_ << " serve_diffs pg" << pg << " after=" << after
                       << " stored=" << ps.stored.size() << " dirty=" << ps.dirty
                       << " frame[16]=" << store().frame(pg).data[16]);
  if (ps.dirty) {
    // Lazy diff creation, on the server's critical path (TreadMarks).
    const DiffTag tag{m_.engine().now(), self_, diff_k_++};
    mem::Diff d = service_diff_create(pg, cost);
    if (pg == trace_page()) {
      std::ostringstream os;
      for (const auto& r : d.runs()) {
        os << " @" << r.word_offset << "+" << r.words.size();
        if (r.word_offset <= trace_word() &&
            trace_word() < r.word_offset + r.words.size()) {
          os << "(w" << trace_word() << "=" << r.words[trace_word() - r.word_offset]
             << ")";
        }
      }
      AECDSM_DEBUG("p" << self_ << " created diff pg" << pg << " tag=" << tag
                       << os.str());
    }
    ps.stored.push_back(StoredDiff{tag, std::move(d)});
    store().drop_twin(pg);
    f.write_protected = true;
    ps.dirty = false;
    dirty_set_.erase(pg);
    trace_counter(trace::names::kDiffOutstanding, m_.engine().now(),
                  dirty_set_.size());
  }
  AECDSM_CHECK_MSG(after <= ps.stored.size(), "diff request beyond stored history");
  cost += m_.params().list_processing_per_elem * (ps.stored.size() - after + 1);
  return std::vector<StoredDiff>(ps.stored.begin() + static_cast<std::ptrdiff_t>(after),
                                 ps.stored.end());
}

// --------------------------------------------------------------------------
// Locks
// --------------------------------------------------------------------------

void TmProtocol::acquire_notice(LockId l) {
  // TreadMarks itself ignores notices; they feed the scoring-only LAP
  // instance at the manager (paper §5.1 robustness study).
  send_from_app(m_.lock_manager(l), kCtl, m_.params().list_processing_per_elem,
                [this, l, p = self_] {
                  // Scoring-only state, mutated from several nodes' events
                  // (manager and current owner): applied in commit order so
                  // the parallel engine reproduces the sequential scores.
                  m_.engine().at_commit(
                      [this, l, p] { sh_->lap_of(l).add_notice(p); });
                },
                sim::Bucket::kSynch);
}

void TmProtocol::acquire(LockId l) {
  const auto& params = m_.params();
  LockLocal& ll = locks_[l];
  ll.grant_ready = false;

  end_interval();
  proc().advance(params.list_processing_per_elem * (dirty_set_.size() + 1),
                 sim::Bucket::kSynch);

  const std::size_t vt_bytes = vt_.size() * 4;
  auto req_vt = std::make_shared<VectorTime>(vt_);
  const ProcId mgr = m_.lock_manager(l);
  std::uint64_t serial = 0;
  if (crash_scheduled()) {
    serial = next_op_serial(l);
    ll.awaiting_serial = serial;
    ll.req_op_id = track_mgr_op(
        l, mgr, serial, [this, l, req_vt, serial](ProcId nm) {
          m_.post(self_, nm, kCtl + req_vt->size() * 4,
                  m_.params().list_processing_per_elem * 2,
                  [this, l, p = self_, req_vt, serial, nm] {
                    mgr_route_request(l, p, req_vt, serial, nm);
                  });
        });
  }
  send_from_app(mgr, kCtl + vt_bytes, params.list_processing_per_elem * 2,
                [this, l, p = self_, req_vt, serial, mgr] {
                  mgr_route_request(l, p, req_vt, serial, mgr);
                },
                sim::Bucket::kSynch);

  proc().wait(sim::Bucket::kSynch, [&ll] { return ll.grant_ready; });
  proc().advance(invalidations_pending_cost_, sim::Bucket::kSynch);
  invalidations_pending_cost_ = 0;
}

void TmProtocol::mgr_route_request(LockId l, ProcId requester,
                                   std::shared_ptr<VectorTime> req_vt,
                                   std::uint64_t serial, ProcId mgr_at) {
  // Manager: score the event, then route to the owner hint (or grant the
  // very first request directly). LAP mutations go through at_commit
  // (scoring-only state also touched by owner-side events). If a crash
  // failover re-elected the manager after this message was sent, forward
  // one hop: the hint shard now belongs to the new manager's worker.
  const ProcId mgr = m_.lock_manager(l);
  if (mgr != mgr_at) {
    m_.post(mgr_at, mgr, kCtl + req_vt->size() * 4,
            m_.params().list_processing_per_elem * 2,
            [this, l, requester, req_vt, serial, mgr] {
              mgr_route_request(l, requester, req_vt, serial, mgr);
            });
    return;
  }
  m_.engine().at_commit([this, l] { sh_->lap_of(l).count_acquire_event(); });
  std::map<LockId, ProcId>& hints = sh_->hint_shard(l, mgr);
  auto it = hints.find(l);
  if (it == hints.end()) {
    hints[l] = requester;
    m_.engine().at_commit([this, l, requester] {
      policy::lap_score_grant(sh_->lap_of(l), kNoProc, requester);
    });
    m_.post(mgr, requester, kCtl, m_.params().list_processing_per_elem,
            [this, l, requester, serial] {
              peer(requester).recv_grant(l, {}, {}, serial);
            });
    return;
  }
  const ProcId hint = it->second;
  m_.post(mgr, hint, kCtl + req_vt->size() * 4,
          m_.params().list_processing_per_elem * 2,
          [this, l, requester, hint, req_vt, serial] {
            peer(hint).lock_request_arrive(l, requester, *req_vt, serial);
          });
}

void TmProtocol::mgr_set_hint(LockId l, ProcId p, ProcId mgr_at) {
  const ProcId mgr = m_.lock_manager(l);
  if (mgr != mgr_at) {
    m_.post(mgr_at, mgr, kCtl, m_.params().list_processing_per_elem,
            [this, l, p, mgr] { mgr_set_hint(l, p, mgr); });
    return;
  }
  sh_->hint_shard(l, mgr)[l] = p;
}

bool TmProtocol::duplicate_waiter(const LockLocal& ll, ProcId requester,
                                  std::uint64_t serial) const {
  if (!crash_scheduled()) return false;
  for (const Waiter& w : ll.waiting) {
    if (w.p == requester && w.serial == serial) return true;
  }
  return false;
}

void TmProtocol::lock_request_arrive(LockId l, ProcId requester, VectorTime req_vt,
                                     std::uint64_t serial) {
  LockLocal& ll = locks_[l];
  if (!ll.owner) {
    // Crash failover replays can deliver the same request twice; if this
    // node already granted to the requester for this serial, the (possibly
    // stale) grant is on its way — drop the duplicate here instead of
    // chasing our own hand-off pointer back to the requester.
    if (crash_scheduled() && ll.handed_to == requester &&
        ll.handed_serial == serial) {
      return;
    }
    if (ll.handed_to == kNoProc) {
      // A grant addressed to this node is still in flight (a forwarded
      // request overtook it); park the request — it is served like any
      // queued waiter once the grant lands and the critical section ends.
      if (duplicate_waiter(ll, requester, serial)) return;
      m_.engine().at_commit(
          [this, l, requester] { sh_->lap_of(l).enqueue_waiter(requester); });
      ll.waiting.push_back(Waiter{requester, std::move(req_vt), serial});
      trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                    ll.waiting.size());
      return;
    }
    const ProcId next = ll.handed_to;
    post_dynamic(self_, next, kCtl + req_vt.size() * 4,
                 [this] { return m_.params().list_processing_per_elem * 2; },
                 [this, l, requester, next, serial,
                  rv = std::move(req_vt)]() mutable {
                   peer(next).lock_request_arrive(l, requester, std::move(rv),
                                                  serial);
                 });
    return;
  }
  if (ll.in_cs) {
    if (duplicate_waiter(ll, requester, serial)) return;
    m_.engine().at_commit(
        [this, l, requester] { sh_->lap_of(l).enqueue_waiter(requester); });
    ll.waiting.push_back(Waiter{requester, std::move(req_vt), serial});
    trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                  ll.waiting.size());
    return;
  }
  serve_grant(l, requester, req_vt, /*engine_side=*/true, serial);
}

void TmProtocol::serve_grant(LockId l, ProcId requester, const VectorTime& req_vt,
                             bool engine_side, std::uint64_t serial) {
  LockLocal& ll = locks_[l];
  AECDSM_CHECK(ll.owner && !ll.in_cs);

  end_interval();
  std::vector<NoticeEntry> entries;
  for (const NoticeEntry& e : log_) {
    if (e.vt[static_cast<std::size_t>(e.writer)] >
        req_vt[static_cast<std::size_t>(e.writer)]) {
      entries.push_back(e);
    }
  }

  // Score LAP against realized transfers (TreadMarks never acts on it).
  m_.engine().at_commit([this, l, requester] {
    policy::lap_score_grant(sh_->lap_of(l), self_, requester);
  });

  ll.owner = false;
  ll.handed_to = requester;
  ll.handed_serial = serial;

  std::size_t bytes = kCtl + vt_.size() * 4;
  std::size_t total_pages = 0;
  for (const NoticeEntry& e : entries) {
    bytes += 8 + e.vt.size() * 4 + e.pages.size() * 8;
    total_pages += e.pages.size();
  }
  const Cycles work = m_.params().list_processing_per_elem *
                      (dirty_set_.size() + entries.size() + total_pages + 2);

  auto deliver = [this, l, requester, serial, entries = std::move(entries),
                  ovt = vt_]() mutable {
    peer(requester).recv_grant(l, std::move(entries), std::move(ovt), serial);
  };
  if (engine_side) {
    const Cycles done = proc().service(work + m_.params().message_overhead);
    m_.engine().schedule(done, [this, requester, bytes, d = std::move(deliver)]() mutable {
      m_.transport().send(self_, requester, bytes,
                        [this, requester, d = std::move(d)]() mutable {
                          const Cycles fin = m_.node(requester).proc->service(
                              m_.params().list_processing_per_elem * 2);
                          m_.engine().schedule(fin, std::move(d));
                        });
    });
  } else {
    proc().advance(work + m_.params().message_overhead, sim::Bucket::kSynch);
    proc().sync();
    m_.post(self_, requester, bytes, m_.params().list_processing_per_elem * 2,
            std::move(deliver));
  }
}

void TmProtocol::recv_grant(LockId l, std::vector<NoticeEntry> entries,
                            VectorTime owner_vt, std::uint64_t serial) {
  LockLocal& ll = locks_[l];
  for (const NoticeEntry& e : entries) {
    if (absorb_entry(e)) apply_entry_invalidations(e);
  }
  if (!owner_vt.empty()) {
    for (std::size_t i = 0; i < vt_.size(); ++i) {
      vt_[i] = std::max(vt_[i], owner_vt[i]);
    }
  }

  const ProcId mgr = m_.lock_manager(l);
  if (crash_scheduled() && serial != ll.awaiting_serial) {
    // Stale grant: a request replayed after a manager failover was also
    // served along the original (recovered) route. Ownership genuinely
    // transferred — the granter gave up custody — so take it idle without
    // entering the critical section (the notices above are always sound to
    // absorb). Any requests parked here while the grant was in flight are
    // served now, release-style: front gets the lock, the rest chase it.
    if (!ll.owner) {
      ll.owner = true;
      ll.in_cs = false;
      ll.handed_to = kNoProc;
      m_.post(self_, mgr, kCtl, m_.params().list_processing_per_elem,
              [this, l, p = self_, mgr] { mgr_set_hint(l, p, mgr); });
      if (!ll.waiting.empty()) {
        Waiter head = std::move(ll.waiting.front());
        ll.waiting.pop_front();
        m_.engine().at_commit([this, l] { sh_->lap_of(l).dequeue_waiter(); });
        std::deque<Waiter> rest;
        rest.swap(ll.waiting);
        trace_counter(trace::names::kLockQueueDepth, m_.engine().now(), 0);
        serve_grant(l, head.p, head.vt, /*engine_side=*/true, head.serial);
        for (Waiter& w : rest) {
          m_.engine().at_commit([this, l] { sh_->lap_of(l).dequeue_waiter(); });
          m_.post(self_, head.p, kCtl + w.vt.size() * 4,
                  m_.params().list_processing_per_elem * 2,
                  [this, l, q = head.p, w = std::move(w)]() mutable {
                    peer(q).requeue_request(l, w.p, std::move(w.vt), w.serial);
                  });
        }
      }
    }
    return;
  }

  ll.owner = true;
  ll.in_cs = true;  // admission: forwarded requests now queue here
  ll.grant_ready = true;
  if (crash_scheduled()) {
    ll.awaiting_serial = 0;
    clear_mgr_op(ll.req_op_id);
    ll.req_op_id = 0;
  }

  // Keep the manager's owner hint fresh (shortens future chases).
  m_.post(self_, mgr, kCtl, m_.params().list_processing_per_elem,
          [this, l, p = self_, mgr] { mgr_set_hint(l, p, mgr); });

  proc().poke();
}

void TmProtocol::release(LockId l) {
  LockLocal& ll = locks_[l];
  AECDSM_CHECK(ll.owner && ll.in_cs);
  ll.in_cs = false;

  end_interval();
  proc().advance(m_.params().list_processing_per_elem * (dirty_set_.size() + 1),
                 sim::Bucket::kSynch);

  if (!ll.waiting.empty()) {
    Waiter head = std::move(ll.waiting.front());
    const ProcId q = head.p;
    ll.waiting.pop_front();
    // The scorer's FIFO mirrors this queue.
    m_.engine().at_commit([this, l] { sh_->lap_of(l).dequeue_waiter(); });
    serve_grant(l, q, head.vt, /*engine_side=*/false, head.serial);
    // Remaining waiters chase the new owner.
    std::deque<Waiter> rest;
    rest.swap(ll.waiting);
    trace_counter(trace::names::kLockQueueDepth, proc().now(), 0);
    for (Waiter& w : rest) {
      m_.engine().at_commit([this, l] { sh_->lap_of(l).dequeue_waiter(); });
      proc().advance(m_.params().message_overhead, sim::Bucket::kSynch);
      proc().sync();
      m_.transport().send(self_, q, kCtl + w.vt.size() * 4,
                        [this, l, q, w = std::move(w)]() mutable {
                          const Cycles done = m_.node(q).proc->service(
                              m_.params().list_processing_per_elem * 2);
                          m_.engine().schedule(done, [this, l, q,
                                                      w = std::move(w)]() mutable {
                            peer(q).requeue_request(l, w.p, std::move(w.vt),
                                                    w.serial);
                          });
                        });
    }
  }
}

void TmProtocol::requeue_request(LockId l, ProcId requester, VectorTime req_vt,
                                 std::uint64_t serial) {
  LockLocal& ll = locks_[l];
  if (!ll.owner) {
    if (crash_scheduled() && ll.handed_to == requester &&
        ll.handed_serial == serial) {
      return;  // duplicate of a request already granted (see lock_request_arrive)
    }
    if (ll.handed_to == kNoProc) {
      // Grant in flight to this node; park the request (see
      // lock_request_arrive).
      if (duplicate_waiter(ll, requester, serial)) return;
      m_.engine().at_commit(
          [this, l, requester] { sh_->lap_of(l).enqueue_waiter(requester); });
      ll.waiting.push_back(Waiter{requester, std::move(req_vt), serial});
      trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                    ll.waiting.size());
      return;
    }
    const ProcId next = ll.handed_to;
    post_dynamic(self_, next, kCtl + req_vt.size() * 4,
                 [this] { return m_.params().list_processing_per_elem * 2; },
                 [this, l, requester, next, serial,
                  rv = std::move(req_vt)]() mutable {
                   peer(next).requeue_request(l, requester, std::move(rv),
                                              serial);
                 });
    return;
  }
  if (ll.in_cs) {
    if (duplicate_waiter(ll, requester, serial)) return;
    m_.engine().at_commit(
        [this, l, requester] { sh_->lap_of(l).enqueue_waiter(requester); });
    ll.waiting.push_back(Waiter{requester, std::move(req_vt), serial});
    trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                  ll.waiting.size());
    return;
  }
  serve_grant(l, requester, req_vt, /*engine_side=*/true, serial);
}

std::vector<ProcId> TmProtocol::lock_sharers(LockId l, ProcId crashed) {
  // TreadMarks' manager state is just the owner hint; the last known owner
  // is the only node with lock-specific custody. (Exclusive-event context:
  // reading the crashed node's shard is safe.)
  std::vector<ProcId> out;
  auto& hints = sh_->hint_shard(l, crashed);
  auto it = hints.find(l);
  if (it != hints.end()) out.push_back(it->second);
  return out;
}

void TmProtocol::migrate_lock_state(LockId l, ProcId from, ProcId to) {
  // Only the owner hint lives at the manager; distributed waiting queues
  // stay with the surviving owners and need no reconstruction.
  sh_->migrate_hint(l, from, to);
}

// --------------------------------------------------------------------------
// Barriers
// --------------------------------------------------------------------------

void TmProtocol::barrier() {
  const auto& params = m_.params();
  end_interval();
  proc().advance(params.list_processing_per_elem * (dirty_set_.size() + 1),
                 sim::Bucket::kSynch);
  barrier_release_ = false;

  // Own notice entries created since the previous barrier (older ones are
  // already global knowledge).
  auto entries = std::make_shared<std::vector<NoticeEntry>>();
  std::size_t entry_pages = 0;
  for (const NoticeEntry& e : log_) {
    if (e.writer == self_ && e.vt[static_cast<std::size_t>(self_)] > last_barrier_own_) {
      entries->push_back(e);
      entry_pages += e.pages.size();
    }
  }
  auto vt_copy = std::make_shared<VectorTime>(vt_);
  const std::size_t bytes =
      kCtl + vt_.size() * 4 + entries->size() * (8 + vt_.size() * 4) + entry_pages * 8;
  send_from_app(m_.barrier_manager(), bytes,
                params.list_processing_per_elem * (entries->size() + entry_pages + 2),
                [this, p = self_, vt_copy, entries] {
                  mgr_barrier_arrive(p, *vt_copy, *entries);
                },
                sim::Bucket::kSynch);

  proc().wait(sim::Bucket::kSynch, [this] { return barrier_release_; });
  proc().advance(invalidations_pending_cost_, sim::Bucket::kSynch);
  invalidations_pending_cost_ = 0;
  last_barrier_own_ = vt_[static_cast<std::size_t>(self_)];
}

void TmProtocol::mgr_barrier_arrive(ProcId p, VectorTime vt,
                                    std::vector<NoticeEntry> entries) {
  auto& b = sh_->barrier;
  if (b.arrival_vt.empty()) {
    b.arrival_vt.assign(static_cast<std::size_t>(m_.nprocs()), VectorTime());
  }
  for (std::size_t i = 0; i < b.merged_vt.size(); ++i) {
    b.merged_vt[i] = std::max(b.merged_vt[i], vt[i]);
  }
  b.arrival_vt[static_cast<std::size_t>(p)] = std::move(vt);
  for (NoticeEntry& e : entries) b.entries.push_back(std::move(e));
  if (++b.arrived < m_.nprocs()) return;

  std::size_t total_pages = 0;
  for (const NoticeEntry& e : b.entries) total_pages += e.pages.size();
  const Cycles cost = m_.params().list_processing_per_elem *
                      (b.entries.size() * static_cast<std::size_t>(m_.nprocs()) +
                       total_pages + static_cast<std::size_t>(m_.nprocs()));
  const Cycles done = m_.node(m_.barrier_manager()).proc->service(cost);

  auto merged = std::make_shared<VectorTime>(b.merged_vt);
  for (int q = 0; q < m_.nprocs(); ++q) {
    // Entries this processor's clock has not covered.
    auto need = std::make_shared<std::vector<NoticeEntry>>();
    std::size_t need_pages = 0;
    const VectorTime& qvt = b.arrival_vt[static_cast<std::size_t>(q)];
    for (const NoticeEntry& e : b.entries) {
      if (e.vt[static_cast<std::size_t>(e.writer)] >
          qvt[static_cast<std::size_t>(e.writer)]) {
        need->push_back(e);
        need_pages += e.pages.size();
      }
    }
    const std::size_t bytes = kCtl + merged->size() * 4 +
                              need->size() * (8 + merged->size() * 4) + need_pages * 8;
    m_.engine().schedule(done, [this, q, bytes, merged, need] {
      m_.post(m_.barrier_manager(), q, bytes, m_.params().list_processing_per_elem * 2,
              [this, q, merged, need] {
                peer(q).recv_barrier_release(*merged, *need);
              });
    });
  }
  b.arrived = 0;
  b.entries.clear();
  for (auto& v : b.arrival_vt) v.clear();
  // merged_vt keeps growing monotonically; no reset needed.
}

void TmProtocol::recv_barrier_release(VectorTime merged,
                                      std::vector<NoticeEntry> entries) {
  for (std::size_t i = 0; i < vt_.size(); ++i) vt_[i] = std::max(vt_[i], merged[i]);
  for (const NoticeEntry& e : entries) {
    if (absorb_entry(e)) apply_entry_invalidations(e);
  }
  barrier_release_ = true;
  proc().poke();
}

// --------------------------------------------------------------------------
// Suite
// --------------------------------------------------------------------------

policy::ConsistencyPolicy TmSuite::default_policy() {
  const policy::ConsistencyPolicy* p = policy::find_policy("TreadMarks");
  AECDSM_CHECK(p != nullptr);
  return *p;
}

TmSuite::TmSuite(policy::ConsistencyPolicy pol) : pol_(std::move(pol)) {
  policy::validate(pol_);
  AECDSM_CHECK_MSG(pol_.family == policy::Family::kTmk,
                   "TmSuite asked to run non-TreadMarks policy '" << pol_.name << "'");
}

dsm::ProtocolSuite TmSuite::suite() {
  dsm::ProtocolSuite s;
  s.name = pol_.name;
  s.make = [this](dsm::Machine& m, ProcId p) -> std::unique_ptr<dsm::Protocol> {
    if (p == 0) shared_ = std::make_shared<TmShared>(m.params(), pol_);
    return std::make_unique<TmProtocol>(m, p, shared_);
  };
  return s;
}

}  // namespace aecdsm::tmk
