#include "locks/model.hpp"

namespace aecdsm::locks {

double mcs_predicted_throughput(double cs_cycles, double handoff_cycles) {
  const double period = cs_cycles + handoff_cycles;
  return period > 0.0 ? 1.0 / period : 0.0;
}

Cycles mcs_handoff_cycles(const SystemParams& p, std::size_t bytes, int hops,
                          Cycles service_cycles) {
  const std::size_t words = (bytes + kWordBytes - 1) / kWordBytes;
  const Cycles wire = 2 * p.io_transfer_cycles(words) +
                      static_cast<Cycles>(hops) * (p.switch_cycles + p.wire_cycles) +
                      p.network_payload_cycles(bytes);
  return p.message_overhead + wire + p.interrupt_cycles + service_cycles;
}

}  // namespace aecdsm::locks
