// Mesh-topology helpers for the hierarchical (cohort) lock strategy and the
// handoff-distance accounting. A cohort is a quadrant of the w x h mesh:
// nodes whose coordinates fall on the same side of both mesh midlines. On a
// 1-wide (or 1-high) mesh the split degenerates to halves, and on a single
// node everything is one cohort — the helpers stay well-defined for every
// geometry SystemParams::validate() accepts.
#pragma once

#include "common/params.hpp"
#include "common/types.hpp"

namespace aecdsm::locks {

/// Quadrant index (0..3) of processor `p` on the params mesh:
/// bit 0 = east half (x >= ceil(w/2)), bit 1 = south half (y >= ceil(h/2)).
int cohort_of(ProcId p, const SystemParams& params);

bool same_cohort(ProcId a, ProcId b, const SystemParams& params);

/// XY dimension-order hop count between two nodes — the Manhattan distance
/// net::MeshNetwork::hop_count computes, reproduced here so accounting code
/// does not need a network instance.
int mesh_hops(ProcId a, ProcId b, const SystemParams& params);

}  // namespace aecdsm::locks
