// Queue discipline + grant accounting shared by the AEC and ERC lock
// managers (DESIGN.md §13). The strategies never change what a lock *is* —
// the shared LockRecord, the serial dedup, the failover chain all stay —
// only which waiter the manager serves next (hier) and who transports the
// grant (mcs). pick_waiter works on the raw FIFO deque so this library
// depends on src/common alone; the protocols adapt their LockLap queues.
#pragma once

#include <cstddef>
#include <deque>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "locks/strategy.hpp"

namespace aecdsm::locks {

struct Pick {
  std::size_t index = 0;      ///< position in the waiting deque to serve
  bool skipped_head = false;  ///< hier promoted an in-cohort waiter past the head
};

/// Choose the next grantee from a non-empty FIFO `waiting` queue.
///
/// central / mcs: always the head (MCS hands off in strict queue order).
/// hier: the first waiter in `releaser`'s mesh quadrant, provided the skip
/// streak is under locks.hier_fairness; otherwise — or when no in-cohort
/// waiter exists — the global head. `streak` is the manager's per-lock count
/// of consecutive grants that bypassed a cross-cohort head; this call
/// updates it. A grant to the head with no skip resets the streak.
Pick pick_waiter(const std::deque<ProcId>& waiting, Strategy strategy,
                 ProcId releaser, const SystemParams& params, int& streak);

/// Fold one grant into the manager's counters: grants/handoffs, mesh hops
/// and cohort crossings of `from` -> `to` (skipped when `from` is kNoProc —
/// an uncontended first grant), the queue depth left behind, and the
/// strategy-specific direct/skip markers.
void note_grant(LockMgrStats& st, const SystemParams& params, ProcId from,
                ProcId to, std::size_t depth_after, bool direct_handoff,
                bool skipped_head);

}  // namespace aecdsm::locks
