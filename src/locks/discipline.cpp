#include "locks/discipline.hpp"

#include "locks/cohort.hpp"

namespace aecdsm::locks {

Pick pick_waiter(const std::deque<ProcId>& waiting, Strategy strategy,
                 ProcId releaser, const SystemParams& params, int& streak) {
  Pick pick;
  if (strategy != Strategy::kHier || releaser == kNoProc) {
    streak = 0;
    return pick;
  }
  if (same_cohort(waiting.front(), releaser, params)) {
    // Serving the head keeps global FIFO order; no fairness debt accrues.
    streak = 0;
    return pick;
  }
  if (streak >= params.locks.hier_fairness) {
    // Budget exhausted: the cross-cohort head has waited long enough.
    streak = 0;
    return pick;
  }
  for (std::size_t i = 1; i < waiting.size(); ++i) {
    if (same_cohort(waiting[i], releaser, params)) {
      ++streak;
      pick.index = i;
      pick.skipped_head = true;
      return pick;
    }
  }
  // No waiter shares the releaser's quadrant: fall back to the head. The
  // streak is left alone — the next release may still be in-cohort.
  return pick;
}

void note_grant(LockMgrStats& st, const SystemParams& params, ProcId from,
                ProcId to, std::size_t depth_after, bool direct_handoff,
                bool skipped_head) {
  ++st.grants;
  if (from != kNoProc && from != to) {
    ++st.handoffs;
    st.handoff_hops += static_cast<std::uint64_t>(mesh_hops(from, to, params));
    if (!same_cohort(from, to, params)) ++st.cross_cohort;
  }
  if (direct_handoff) ++st.direct_handoffs;
  if (skipped_head) ++st.hier_skips;
  st.queue_depth_sum += depth_after;
  if (depth_after > st.queue_depth_max) st.queue_depth_max = depth_after;
}

}  // namespace aecdsm::locks
