#include "locks/cohort.hpp"

#include <cstdlib>

namespace aecdsm::locks {

namespace {

struct Coord {
  int x;
  int y;
};

Coord coord_of(ProcId p, const SystemParams& params) {
  return Coord{p % params.mesh_width, p / params.mesh_width};
}

}  // namespace

int cohort_of(ProcId p, const SystemParams& params) {
  const Coord c = coord_of(p, params);
  const int half_w = (params.mesh_width + 1) / 2;
  const int half_h = (params.mesh_height() + 1) / 2;
  return (c.x >= half_w ? 1 : 0) | (c.y >= half_h ? 2 : 0);
}

bool same_cohort(ProcId a, ProcId b, const SystemParams& params) {
  return cohort_of(a, params) == cohort_of(b, params);
}

int mesh_hops(ProcId a, ProcId b, const SystemParams& params) {
  const Coord ca = coord_of(a, params);
  const Coord cb = coord_of(b, params);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

}  // namespace aecdsm::locks
