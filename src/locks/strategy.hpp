// Lock-manager strategy selection (DESIGN.md §13). The knob lives in
// SystemParams::locks as a string so src/common stays free of protocol
// concepts; this header gives the protocols a typed view of it.
//
//   central — the paper's scheme: one manager node per lock serializes
//             REQUEST/RELEASE and forwards every grant (FIFO).
//   mcs     — MCS-style distributed queue: the manager still orders the
//             queue, but links each enqueued waiter to its predecessor so a
//             release hands the lock off with a single point-to-point
//             message instead of a RELEASE + GRANT pair through the manager.
//   hier    — topology-aware hierarchical handoff in the spirit of the
//             RMA-locks cohort design: grants prefer waiters inside the
//             releaser's mesh quadrant (cohort, see cohort.hpp), bounded by
//             a fairness budget, before crossing quadrant boundaries.
#pragma once

#include <cstdint>
#include <string>

namespace aecdsm::locks {

enum class Strategy : std::uint8_t { kCentral, kMcs, kHier };

/// Parse SystemParams::locks.strategy; throws SimError naming the knob on an
/// unknown spelling (same wording as SystemParams::validate()).
Strategy parse_strategy(const std::string& name);

const char* to_string(Strategy s);

}  // namespace aecdsm::locks
