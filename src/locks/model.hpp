// Closed-form performance model for the mcs strategy, after "Performance
// Prediction for Coarse-Grained Locking: MCS Case" (Aksenov et al.): a
// saturated MCS queue serializes the lock, so steady-state throughput is
// one acquisition per (C + H) cycles — C the critical-section length, H the
// owner-to-owner handoff latency. bench_lock_scale prints the prediction
// next to the simulated rate and a committed test holds them within a
// stated tolerance.
#pragma once

#include <cstddef>

#include "common/params.hpp"
#include "common/types.hpp"

namespace aecdsm::locks {

/// Acquisitions per cycle of a saturated MCS lock: 1 / (C + H).
double mcs_predicted_throughput(double cs_cycles, double handoff_cycles);

/// Simulator-calibrated H for one direct handoff message of `bytes` over
/// `hops` mesh hops: the releaser's software send overhead, the uncontended
/// wormhole latency (mirroring net::MeshNetwork::uncontended_latency), the
/// receiver interrupt, and `service_cycles` of grant processing before the
/// new owner's critical section can start.
Cycles mcs_handoff_cycles(const SystemParams& p, std::size_t bytes, int hops,
                          Cycles service_cycles);

}  // namespace aecdsm::locks
