#include "locks/strategy.hpp"

#include "common/check.hpp"

namespace aecdsm::locks {

Strategy parse_strategy(const std::string& name) {
  if (name == "central") return Strategy::kCentral;
  if (name == "mcs") return Strategy::kMcs;
  if (name == "hier") return Strategy::kHier;
  AECDSM_CHECK_MSG(false, "locks.strategy: unknown strategy '"
                              << name << "' (choose central, mcs or hier)");
}

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kCentral: return "central";
    case Strategy::kMcs: return "mcs";
    case Strategy::kHier: return "hier";
  }
  return "?";
}

}  // namespace aecdsm::locks
