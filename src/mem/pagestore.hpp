// Per-node view of the shared address space: page frames with validity and
// write-protection bits, plus twin management. The coherence protocols own
// the policy; this class owns the mechanics.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/params.hpp"
#include "common/types.hpp"
#include "mem/diff.hpp"

namespace aecdsm::mem {

/// One node's copy of one shared page.
///
/// Pages start write-protected: the twin discipline requires every first
/// write of an epoch to trap, so protection is only dropped after a twin
/// exists (or the protocol knows modifications need no tracking).
struct PageFrame {
  std::vector<Word> data;                 ///< page contents (page_words entries)
  bool valid = false;                     ///< may the local processor access it?
  bool write_protected = true;            ///< trap the next write (twin discipline)
  std::unique_ptr<std::vector<Word>> twin;  ///< pristine copy for diffing

  bool has_twin() const { return twin != nullptr; }
};

class PageStore {
 public:
  PageStore(const SystemParams& params, std::size_t num_pages)
      : words_per_page_(params.words_per_page()), frames_(num_pages) {}

  std::size_t num_pages() const { return frames_.size(); }
  std::size_t words_per_page() const { return words_per_page_; }

  PageFrame& frame(PageId page) {
    AECDSM_CHECK_MSG(page < frames_.size(), "page " << page << " out of range");
    PageFrame& f = frames_[page];
    if (f.data.empty()) f.data.assign(words_per_page_, 0);
    return f;
  }

  const PageFrame& frame(PageId page) const {
    AECDSM_CHECK_MSG(page < frames_.size(), "page " << page << " out of range");
    return frames_[page];
  }

  std::span<Word> page_span(PageId page) {
    return std::span<Word>(frame(page).data);
  }

  /// Snapshot the current contents as the page's twin. Twin buffers are
  /// recycled through a per-store free list: the twin/diff discipline
  /// allocates and drops one page-sized buffer per write epoch, and the
  /// store is strictly node-local, so the list needs no synchronization
  /// under the parallel engine.
  void make_twin(PageId page) {
    PageFrame& f = frame(page);
    if (!twin_pool_.empty()) {
      f.twin = std::move(twin_pool_.back());
      twin_pool_.pop_back();
      *f.twin = f.data;
    } else {
      f.twin = std::make_unique<std::vector<Word>>(f.data);
    }
  }

  void drop_twin(PageId page) {
    PageFrame& f = frame(page);
    if (f.twin != nullptr && twin_pool_.size() < kTwinPoolCap) {
      twin_pool_.push_back(std::move(f.twin));
    }
    f.twin.reset();
  }

  /// Twin buffers parked in the free list (for tests).
  std::size_t pooled_twins() const { return twin_pool_.size(); }

  /// Diff current contents against the twin (which must exist).
  Diff diff_against_twin(PageId page) {
    PageFrame& f = frame(page);
    AECDSM_CHECK_MSG(f.has_twin(), "diff requested without twin, page " << page);
    return Diff::create(*f.twin, f.data);
  }

  /// Refresh the twin to match current contents (cheaper than re-allocating
  /// when the paper says twins are "reutilized").
  void refresh_twin(PageId page) {
    PageFrame& f = frame(page);
    AECDSM_CHECK(f.has_twin());
    *f.twin = f.data;
  }

 private:
  /// Peak simultaneous twins rarely exceeds the node's dirty set; a modest
  /// cap keeps idle memory bounded while capturing nearly all reuse.
  static constexpr std::size_t kTwinPoolCap = 64;

  std::size_t words_per_page_;
  std::vector<PageFrame> frames_;
  std::vector<std::unique_ptr<std::vector<Word>>> twin_pool_;
};

}  // namespace aecdsm::mem
