#include "mem/diff.hpp"

#include <algorithm>
#include <functional>
#include <tuple>

#include "common/check.hpp"

namespace aecdsm::mem {

Diff Diff::create(std::span<const Word> twin, std::span<const Word> current) {
  AECDSM_CHECK_MSG(twin.size() == current.size(),
                   "twin/page size mismatch: " << twin.size() << " vs " << current.size());
  Diff d;
  const Word* const tbegin = twin.data();
  const Word* const tend = tbegin + twin.size();
  const Word* t = tbegin;
  const Word* c = current.data();
  while (t != tend) {
    // Skip the unchanged region in one std::mismatch pass (pages are mostly
    // clean in practice, and the equality scan vectorizes).
    std::tie(t, c) = std::mismatch(t, tend, c);
    if (t == tend) break;
    // The run ends at the next equal word pair: mismatch again, with the
    // predicate inverted.
    const auto [rt, rc] = std::mismatch(t, tend, c, std::not_equal_to<Word>{});
    Run run;
    run.word_offset = static_cast<std::uint32_t>(t - tbegin);
    run.words.assign(c, rc);
    d.runs_.push_back(std::move(run));
    t = rt;
    c = rc;
  }
  return d;
}

void Diff::apply_to(std::span<Word> page) const {
  for (const Run& run : runs_) {
    AECDSM_CHECK_MSG(run.word_offset + run.words.size() <= page.size(),
                     "diff run exceeds page bounds");
    for (std::size_t k = 0; k < run.words.size(); ++k) {
      page[run.word_offset + k] = run.words[k];
    }
  }
}

Diff Diff::merge(const Diff& older, const Diff& newer) {
  // Linear two-pointer merge over the sorted run lists: both sides are
  // walked word-position by word-position, newer winning where the
  // footprints overlap. O(changed words) with no intermediate
  // materialization — this sits on the lock-release hot path.
  Diff out;
  Run current;
  bool open = false;
  std::uint32_t expected = 0;
  auto emit = [&](std::uint32_t off, Word w) {
    if (open && off == expected) {
      current.words.push_back(w);
    } else {
      if (open) out.runs_.push_back(std::move(current));
      current = Run{};
      current.word_offset = off;
      current.words.push_back(w);
      open = true;
    }
    expected = off + 1;
  };

  const std::vector<Run>& a = older.runs_;
  const std::vector<Run>& b = newer.runs_;
  std::size_t ai = 0, aw = 0;  // run index / word index within the run
  std::size_t bi = 0, bw = 0;
  while (ai < a.size() || bi < b.size()) {
    const bool has_a = ai < a.size();
    const bool has_b = bi < b.size();
    const std::uint32_t pa =
        has_a ? a[ai].word_offset + static_cast<std::uint32_t>(aw) : 0;
    const std::uint32_t pb =
        has_b ? b[bi].word_offset + static_cast<std::uint32_t>(bw) : 0;
    const bool take_a = has_a && (!has_b || pa <= pb);
    const bool take_b = has_b && (!has_a || pb <= pa);
    if (take_b) {
      emit(pb, b[bi].words[bw]);  // where both cover a word, newer wins
      if (++bw == b[bi].words.size()) { ++bi; bw = 0; }
    } else {
      emit(pa, a[ai].words[aw]);
    }
    if (take_a) {
      if (++aw == a[ai].words.size()) { ++ai; aw = 0; }
    }
  }
  if (open) out.runs_.push_back(std::move(current));
  return out;
}

std::size_t Diff::changed_words() const {
  std::size_t n = 0;
  for (const Run& run : runs_) n += run.words.size();
  return n;
}

std::size_t Diff::encoded_bytes() const {
  std::size_t bytes = 0;
  for (const Run& run : runs_) bytes += 8 + run.words.size() * kWordBytes;
  return bytes;
}

bool Diff::operator==(const Diff& o) const {
  if (runs_.size() != o.runs_.size()) return false;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].word_offset != o.runs_[i].word_offset) return false;
    if (runs_[i].words != o.runs_[i].words) return false;
  }
  return true;
}

}  // namespace aecdsm::mem
