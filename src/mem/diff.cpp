#include "mem/diff.hpp"

#include <algorithm>
#include <functional>
#include <tuple>

#include "common/check.hpp"

namespace aecdsm::mem {

namespace wordpool {
namespace {

/// Thread-local free list. Function-local so each engine worker thread gets
/// its own on first use and tears it down at thread exit; no Diff outlives
/// its thread's pool (protocol state is released on the main thread before
/// exit, and worker threads destroy no diffs after their run() returns).
struct Pool {
  std::vector<std::vector<Word>> free;
};

Pool& pool() {
  static thread_local Pool p;
  return p;
}

/// Parked-buffer cap: diffs at peak concurrency stay bounded, so a small
/// cap captures nearly all reuse while bounding idle memory.
constexpr std::size_t kMaxParked = 256;

}  // namespace

std::vector<Word> acquire() {
  Pool& p = pool();
  if (p.free.empty()) return {};
  std::vector<Word> v = std::move(p.free.back());
  p.free.pop_back();
  v.clear();
  return v;
}

void recycle(std::vector<Word>&& v) {
  if (v.capacity() == 0) return;
  Pool& p = pool();
  if (p.free.size() >= kMaxParked) return;  // excess capacity is just freed
  p.free.push_back(std::move(v));
}

std::size_t parked() { return pool().free.size(); }

}  // namespace wordpool

Diff::~Diff() {
  for (Run& r : runs_) wordpool::recycle(std::move(r.words));
}

Diff::Diff(const Diff& o) {
  runs_.reserve(o.runs_.size());
  for (const Run& r : o.runs_) {
    Run copy;
    copy.word_offset = r.word_offset;
    copy.words = wordpool::acquire();
    copy.words.assign(r.words.begin(), r.words.end());
    runs_.push_back(std::move(copy));
  }
}

Diff& Diff::operator=(const Diff& o) {
  if (this == &o) return *this;
  Diff copy(o);
  *this = std::move(copy);
  return *this;
}

Diff Diff::create(std::span<const Word> twin, std::span<const Word> current) {
  AECDSM_CHECK_MSG(twin.size() == current.size(),
                   "twin/page size mismatch: " << twin.size() << " vs " << current.size());
  Diff d;
  const std::size_t n = twin.size();
  const Word* const t = twin.data();
  const Word* const c = current.data();
  // Fixed-width chunks whose XOR-OR reduction (clean test) and != -AND
  // reduction (dirty test) compile to branch-free vector compares on any
  // SIMD ISA the compiler targets. Chunks are positional, not aligned:
  // unaligned 32-byte loads are cheap everywhere that matters.
  constexpr std::size_t K = 8;
  std::size_t i = 0;
  while (i < n) {
    // Skip clean chunks (pages are mostly clean in practice).
    while (i + K <= n) {
      Word acc = 0;
      for (std::size_t j = 0; j < K; ++j) acc |= t[i + j] ^ c[i + j];
      if (acc != 0) break;
      i += K;
    }
    while (i < n && t[i] == c[i]) ++i;  // tail / position within dirty chunk
    if (i >= n) break;
    const std::size_t start = i;
    // Extend the run: whole-dirty chunks first, then the word boundary.
    while (i + K <= n) {
      bool all = true;
      for (std::size_t j = 0; j < K; ++j) all &= (t[i + j] != c[i + j]);
      if (!all) break;
      i += K;
    }
    while (i < n && t[i] != c[i]) ++i;
    Run run;
    run.word_offset = static_cast<std::uint32_t>(start);
    run.words = wordpool::acquire();
    run.words.assign(c + start, c + i);
    d.runs_.push_back(std::move(run));
  }
  return d;
}

Diff Diff::create_scalar(std::span<const Word> twin,
                         std::span<const Word> current) {
  AECDSM_CHECK_MSG(twin.size() == current.size(),
                   "twin/page size mismatch: " << twin.size() << " vs " << current.size());
  Diff d;
  const std::size_t n = twin.size();
  std::size_t i = 0;
  while (i < n) {
    while (i < n && twin[i] == current[i]) ++i;
    if (i >= n) break;
    const std::size_t start = i;
    while (i < n && twin[i] != current[i]) ++i;
    Run run;
    run.word_offset = static_cast<std::uint32_t>(start);
    run.words.assign(current.begin() + static_cast<std::ptrdiff_t>(start),
                     current.begin() + static_cast<std::ptrdiff_t>(i));
    d.runs_.push_back(std::move(run));
  }
  return d;
}

void Diff::apply_to(std::span<Word> page) const {
  for (const Run& run : runs_) {
    AECDSM_CHECK_MSG(run.word_offset + run.words.size() <= page.size(),
                     "diff run exceeds page bounds");
    std::copy(run.words.begin(), run.words.end(),
              page.begin() + run.word_offset);
  }
}

Diff Diff::merge(const Diff& older, const Diff& newer) {
  // Linear two-pointer merge over the sorted run lists: both sides are
  // walked word-position by word-position, newer winning where the
  // footprints overlap. O(changed words) with no intermediate
  // materialization — this sits on the lock-release hot path.
  Diff out;
  Run current;
  bool open = false;
  std::uint32_t expected = 0;
  auto emit = [&](std::uint32_t off, Word w) {
    if (open && off == expected) {
      current.words.push_back(w);
    } else {
      if (open) out.runs_.push_back(std::move(current));
      current = Run{};
      current.word_offset = off;
      current.words = wordpool::acquire();
      current.words.push_back(w);
      open = true;
    }
    expected = off + 1;
  };

  const std::vector<Run>& a = older.runs_;
  const std::vector<Run>& b = newer.runs_;
  std::size_t ai = 0, aw = 0;  // run index / word index within the run
  std::size_t bi = 0, bw = 0;
  while (ai < a.size() || bi < b.size()) {
    const bool has_a = ai < a.size();
    const bool has_b = bi < b.size();
    const std::uint32_t pa =
        has_a ? a[ai].word_offset + static_cast<std::uint32_t>(aw) : 0;
    const std::uint32_t pb =
        has_b ? b[bi].word_offset + static_cast<std::uint32_t>(bw) : 0;
    const bool take_a = has_a && (!has_b || pa <= pb);
    const bool take_b = has_b && (!has_a || pb <= pa);
    if (take_b) {
      emit(pb, b[bi].words[bw]);  // where both cover a word, newer wins
      if (++bw == b[bi].words.size()) { ++bi; bw = 0; }
    } else {
      emit(pa, a[ai].words[aw]);
    }
    if (take_a) {
      if (++aw == a[ai].words.size()) { ++ai; aw = 0; }
    }
  }
  if (open) out.runs_.push_back(std::move(current));
  return out;
}

std::size_t Diff::changed_words() const {
  std::size_t n = 0;
  for (const Run& run : runs_) n += run.words.size();
  return n;
}

std::size_t Diff::encoded_bytes() const {
  std::size_t bytes = 0;
  for (const Run& run : runs_) bytes += 8 + run.words.size() * kWordBytes;
  return bytes;
}

bool Diff::operator==(const Diff& o) const {
  if (runs_.size() != o.runs_.size()) return false;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].word_offset != o.runs_[i].word_offset) return false;
    if (runs_[i].words != o.runs_[i].words) return false;
  }
  return true;
}

}  // namespace aecdsm::mem
