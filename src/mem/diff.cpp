#include "mem/diff.hpp"

#include <map>

#include "common/check.hpp"

namespace aecdsm::mem {

Diff Diff::create(std::span<const Word> twin, std::span<const Word> current) {
  AECDSM_CHECK_MSG(twin.size() == current.size(),
                   "twin/page size mismatch: " << twin.size() << " vs " << current.size());
  Diff d;
  std::size_t i = 0;
  const std::size_t n = twin.size();
  while (i < n) {
    if (twin[i] == current[i]) {
      ++i;
      continue;
    }
    Run run;
    run.word_offset = static_cast<std::uint32_t>(i);
    while (i < n && twin[i] != current[i]) {
      run.words.push_back(current[i]);
      ++i;
    }
    d.runs_.push_back(std::move(run));
  }
  return d;
}

void Diff::apply_to(std::span<Word> page) const {
  for (const Run& run : runs_) {
    AECDSM_CHECK_MSG(run.word_offset + run.words.size() <= page.size(),
                     "diff run exceeds page bounds");
    for (std::size_t k = 0; k < run.words.size(); ++k) {
      page[run.word_offset + k] = run.words[k];
    }
  }
}

Diff Diff::merge(const Diff& older, const Diff& newer) {
  // Materialize into a sparse word map; newer overwrites older. Page sizes
  // in this simulator are small (1K words) and merge frequency is modest,
  // so clarity beats micro-optimization here.
  std::map<std::uint32_t, Word> words;
  for (const Run& run : older.runs_) {
    for (std::size_t k = 0; k < run.words.size(); ++k) {
      words[run.word_offset + static_cast<std::uint32_t>(k)] = run.words[k];
    }
  }
  for (const Run& run : newer.runs_) {
    for (std::size_t k = 0; k < run.words.size(); ++k) {
      words[run.word_offset + static_cast<std::uint32_t>(k)] = run.words[k];
    }
  }
  Diff out;
  Run current;
  bool open = false;
  std::uint32_t expected = 0;
  for (const auto& [off, w] : words) {
    if (open && off == expected) {
      current.words.push_back(w);
      ++expected;
      continue;
    }
    if (open) out.runs_.push_back(std::move(current));
    current = Run{};
    current.word_offset = off;
    current.words.push_back(w);
    expected = off + 1;
    open = true;
  }
  if (open) out.runs_.push_back(std::move(current));
  return out;
}

std::size_t Diff::changed_words() const {
  std::size_t n = 0;
  for (const Run& run : runs_) n += run.words.size();
  return n;
}

std::size_t Diff::encoded_bytes() const {
  std::size_t bytes = 0;
  for (const Run& run : runs_) bytes += 8 + run.words.size() * kWordBytes;
  return bytes;
}

bool Diff::operator==(const Diff& o) const {
  if (runs_.size() != o.runs_.size()) return false;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].word_offset != o.runs_[i].word_offset) return false;
    if (runs_[i].words != o.runs_[i].words) return false;
  }
  return true;
}

}  // namespace aecdsm::mem
