// Timing models for the node-local memory hierarchy (Table 1): a
// direct-mapped data cache, a TLB, and a write buffer. These models only
// produce latencies — data correctness is handled at page granularity by
// the DSM layer — matching the paper's accounting where cache misses, TLB
// fills and write-buffer stalls make up the "others" execution-time bucket.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/params.hpp"
#include "common/types.hpp"

namespace aecdsm::mem {

/// Direct-mapped data cache for shared accesses. Private data and
/// instructions are assumed to always hit (1 cycle), per the paper.
class CacheModel {
 public:
  explicit CacheModel(const SystemParams& params)
      : line_bytes_(params.cache_line_bytes),
        num_lines_(params.cache_bytes / params.cache_line_bytes),
        miss_cycles_(params.memory_access_cycles(params.words_per_cache_line())),
        tags_(num_lines_, kInvalidTag) {}

  /// Look up `addr`; returns the stall beyond the 1-cycle hit time
  /// (0 on hit, the line-fill latency on miss).
  Cycles access(GAddr addr) {
    const std::uint64_t line_addr = addr / line_bytes_;
    const std::size_t index = static_cast<std::size_t>(line_addr % num_lines_);
    if (tags_[index] == line_addr) return 0;
    tags_[index] = line_addr;
    ++misses_;
    return miss_cycles_;
  }

  /// Drop all lines belonging to `page` — called when the page's contents
  /// change underneath the processor (diff applied, page re-fetched) or the
  /// page is invalidated.
  void invalidate_page(PageId page, std::size_t page_bytes) {
    const GAddr base = static_cast<GAddr>(page) * page_bytes;
    for (GAddr a = base; a < base + page_bytes; a += line_bytes_) {
      const std::uint64_t line_addr = a / line_bytes_;
      const std::size_t index = static_cast<std::size_t>(line_addr % num_lines_);
      if (tags_[index] == line_addr) tags_[index] = kInvalidTag;
    }
  }

  std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::uint64_t kInvalidTag = ~0ULL;
  std::size_t line_bytes_;
  std::size_t num_lines_;
  Cycles miss_cycles_;
  std::vector<std::uint64_t> tags_;
  std::uint64_t misses_ = 0;
};

/// Direct-mapped TLB over shared page numbers.
class TlbModel {
 public:
  explicit TlbModel(const SystemParams& params)
      : entries_(static_cast<std::size_t>(params.tlb_entries), kNoPage),
        fill_cycles_(params.tlb_fill_cycles) {}

  /// Returns the TLB fill penalty (0 on hit).
  Cycles access(PageId page) {
    const std::size_t index = page % entries_.size();
    if (entries_[index] == page) return 0;
    entries_[index] = page;
    ++misses_;
    return fill_cycles_;
  }

  std::uint64_t misses() const { return misses_; }

 private:
  std::vector<PageId> entries_;
  Cycles fill_cycles_;
  std::uint64_t misses_ = 0;
};

/// Write buffer with `write_buffer_entries` slots draining at memory speed.
/// A write stalls the processor only when the buffer is full.
class WriteBuffer {
 public:
  explicit WriteBuffer(const SystemParams& params)
      : capacity_(static_cast<std::size_t>(params.write_buffer_entries)),
        drain_cycles_(params.memory_access_cycles(1)) {}

  /// Record a write issued at local time `now`; returns the stall (0 if a
  /// slot is free).
  Cycles write(Cycles now) {
    while (!retire_.empty() && retire_.front() <= now) retire_.pop_front();
    Cycles stall = 0;
    if (retire_.size() >= capacity_) {
      stall = retire_.front() - now;
      retire_.pop_front();
    }
    const Cycles start = std::max(now + stall, retire_.empty() ? 0 : retire_.back());
    retire_.push_back(start + drain_cycles_);
    stalls_ += stall;
    return stall;
  }

  Cycles total_stalls() const { return stalls_; }

 private:
  std::size_t capacity_;
  Cycles drain_cycles_;
  std::deque<Cycles> retire_;
  Cycles stalls_ = 0;
};

}  // namespace aecdsm::mem
