// Twin/diff machinery: the core data-movement currency of both AEC and
// TreadMarks. A diff is a run-length encoding of the words of a page that
// differ from its twin (the pristine copy snapshotted when the page was
// first written in the current epoch).
//
// Diff creation and merging sit on the simulator's hottest host paths
// (every release, every served fetch), so the storage behind each run is
// recycled through a thread-local buffer pool: a destroyed diff donates its
// word vectors back, and create/merge/copy draw capacity from the pool
// instead of malloc. Each engine worker thread (and the sequential engine's
// one thread) owns its pool, so no synchronization is needed, and recycled
// capacity never crosses threads in a racy way — the vectors themselves use
// the global allocator, the pool merely keeps them alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace aecdsm::mem {

class Diff {
 public:
  /// A maximal run of consecutive modified words.
  struct Run {
    std::uint32_t word_offset = 0;  ///< first modified word within the page
    std::vector<Word> words;        ///< new values
  };

  Diff() = default;
  ~Diff();
  Diff(const Diff& o);
  Diff& operator=(const Diff& o);
  Diff(Diff&&) noexcept = default;
  Diff& operator=(Diff&&) noexcept = default;

  /// Encode the difference `current - twin`. Both spans must be one page.
  /// Scans in word chunks whose XOR-OR reduction the compiler vectorizes
  /// (SSE2/NEON without intrinsics); bitwise-equal to create_scalar().
  static Diff create(std::span<const Word> twin, std::span<const Word> current);

  /// Reference encoder: one word at a time, no chunking. Kept as the oracle
  /// the vectorized create() is tested (and microbenchmarked) against.
  static Diff create_scalar(std::span<const Word> twin,
                            std::span<const Word> current);

  /// Overwrite the encoded words of `page` with this diff's values.
  void apply_to(std::span<Word> page) const;

  /// Combine two diffs of the same page: where both touch a word, `newer`
  /// wins. The result covers the union of both footprints. Used by AEC at
  /// lock release to merge inherited diffs with the releaser's own.
  static Diff merge(const Diff& older, const Diff& newer);

  bool empty() const { return runs_.empty(); }

  /// Total number of encoded (modified) words.
  std::size_t changed_words() const;

  /// Wire size: per-run header (offset + length, 8 bytes) plus word data.
  /// This is the `bytes` a transfer of the diff puts on the network.
  std::size_t encoded_bytes() const;

  const std::vector<Run>& runs() const { return runs_; }

  bool operator==(const Diff& o) const;

 private:
  std::vector<Run> runs_;  ///< sorted by word_offset, non-overlapping, maximal
};

/// Thread-local recycling pool behind Run::words (exposed for tests and the
/// microbench): acquire() returns an empty vector, reusing donated capacity
/// when available; recycle() donates one back (capped, excess is freed).
namespace wordpool {
std::vector<Word> acquire();
void recycle(std::vector<Word>&& v);
/// Buffers currently parked in this thread's pool.
std::size_t parked();
}  // namespace wordpool

}  // namespace aecdsm::mem
