#include "sim/cothread.hpp"

#include "common/check.hpp"

namespace aecdsm::sim {

CoThread::CoThread(std::function<void()> body)
    : os_thread_([this, b = std::move(body)]() mutable { thread_main(std::move(b)); }) {}

CoThread::~CoThread() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!finished_) {
      cancel_ = true;
      turn_ = Turn::kThread;
      cv_.notify_all();
      cv_.wait(lk, [this] { return finished_; });
    }
  }
  os_thread_.join();
}

void CoThread::thread_main(std::function<void()> body) {
  // Wait for the first resume() before touching any simulation state.
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return turn_ == Turn::kThread; });
    if (cancel_) {
      finished_ = true;
      turn_ = Turn::kEngine;
      cv_.notify_all();
      return;
    }
  }
  try {
    body();
  } catch (const CoThreadCancelled&) {
    // Clean teardown path — fall through to the finished handshake.
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(mu_);
  finished_ = true;
  turn_ = Turn::kEngine;
  cv_.notify_all();
}

void CoThread::resume() {
  std::unique_lock<std::mutex> lk(mu_);
  AECDSM_CHECK_MSG(!finished_, "resume() on a finished CoThread");
  turn_ = Turn::kThread;
  cv_.notify_all();
  cv_.wait(lk, [this] { return turn_ == Turn::kEngine; });
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void CoThread::yield_to_engine() {
  std::unique_lock<std::mutex> lk(mu_);
  turn_ = Turn::kEngine;
  cv_.notify_all();
  cv_.wait(lk, [this] { return turn_ == Turn::kThread; });
  if (cancel_) throw CoThreadCancelled{};
}

}  // namespace aecdsm::sim
