// Conservative parallel-DES mode of sim::Engine. The sequential path lives
// entirely in the header; everything here only runs after enable_parallel().
//
// Execution model per round:
//   * Each node owns a (t, key)-ordered event heap. Workers own disjoint
//     node groups and execute any owned event with t < horizon(), where
//     horizon() = min over all node clocks + lookahead and a node's clock is
//     min(next pending event, earliest uncommitted cross-node send). Clocks
//     only grow within a round, so workers cache the horizon and re-scan
//     lazily; compute-heavy stretches leapfrog without synchronization.
//   * Side effects that touch shared simulation state are captured, not
//     applied: same-node schedule() calls enqueue provisionally (and log an
//     op), cross-node mesh sends log an op only. Everything a node captures
//     is attributable to it because every cross-node interaction in the
//     simulator rides the message fabric (see dsm::Machine).
//   * When no node can advance, the coordinator replays the executed events
//     of the round in the sequential engine's (t, seq) order, assigning the
//     sequential seq numbers to every captured schedule and routing captured
//     sends against the real mesh state in that order. Deliveries created by
//     replay land at or beyond every executed frontier (>= quiescent horizon
//     by the lookahead bound), so no node ever receives an event in its past.
//
// Determinism: replay reproduces the sequential engine's total event order
// by induction over rounds — see DESIGN.md ("Parallel engine") for the
// argument that the provisional in-round order matches the final order.
#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace aecdsm::sim {

Engine::~Engine() = default;

void Engine::enable_parallel(int threads, int num_nodes, Cycles lookahead,
                             MeshResolver resolver, LocalSendNote local_note) {
  if (threads <= 1) return;
  AECDSM_CHECK_MSG(heap_.empty() && seq_ == 0,
                   "enable_parallel after events were scheduled");
  AECDSM_CHECK(num_nodes > 0 && lookahead > 0);
  par_active_ = true;
  par_threads_ = std::min(threads, num_nodes);
  lookahead_ = lookahead;
  mesh_resolver_ = std::move(resolver);
  local_send_note_ = std::move(local_note);
  pnodes_ = std::vector<PNode>(static_cast<std::size_t>(num_nodes));
  clocks_ = std::vector<PClock>(static_cast<std::size_t>(num_nodes));
  for (auto& c : clocks_) c.v.store(kNever, std::memory_order_relaxed);
  wake_ = std::vector<PWake>(static_cast<std::size_t>(par_threads_));
}

// --------------------------------------------------------------------------
// Per-node event heaps
// --------------------------------------------------------------------------

namespace {

/// Min-heap ordering over (t, key). Provisional keys carry the high bit, so
/// they sort after every sequenced event at the same time — the order replay
/// preserves when it assigns real seqs.
inline bool pe_earlier(const Engine* /*unused*/, Cycles at, std::uint64_t ak,
                       Cycles bt, std::uint64_t bk) {
  if (at != bt) return at < bt;
  return ak < bk;
}

}  // namespace

Engine::PEvent* Engine::par_alloc(int node, Cycles t, std::uint64_t key,
                                  EventFn fn) {
  PNode& nd = pnodes_[static_cast<std::size_t>(node)];
  PEvent* e;
  if (!nd.free_list.empty()) {
    e = nd.free_list.back();
    nd.free_list.pop_back();
  } else {
    nd.pool.emplace_back();
    e = &nd.pool.back();
  }
  e->t = t;
  e->key = key;
  e->exclusive = false;
  e->fn = std::move(fn);
  e->op_begin = 0;
  e->op_count = 0;
  return e;
}

void Engine::par_free(int node, PEvent* e) {
  e->fn = nullptr;
  pnodes_[static_cast<std::size_t>(node)].free_list.push_back(e);
}

void Engine::par_push(int node, PEvent* e) {
  if (e->exclusive) {
    // Only reachable from a serial point (replay push or a solo execution's
    // schedule_exclusive), so the cap update cannot race a running round.
    excl_pending_.insert(e->t);
    excl_cap_.store(*excl_pending_.begin(), std::memory_order_release);
  }
  std::vector<PEvent*>& h = pnodes_[static_cast<std::size_t>(node)].heap;
  h.push_back(e);
  std::size_t i = h.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!pe_earlier(this, h[i]->t, h[i]->key, h[parent]->t, h[parent]->key)) break;
    std::swap(h[i], h[parent]);
    i = parent;
  }
}

Engine::PEvent* Engine::par_pop(int node) {
  std::vector<PEvent*>& h = pnodes_[static_cast<std::size_t>(node)].heap;
  PEvent* out = h.front();
  h.front() = h.back();
  h.pop_back();
  const std::size_t n = h.size();
  std::size_t i = 0;
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && pe_earlier(this, h[l]->t, h[l]->key, h[best]->t, h[best]->key))
      best = l;
    if (r < n && pe_earlier(this, h[r]->t, h[r]->key, h[best]->t, h[best]->key))
      best = r;
    if (best == i) break;
    std::swap(h[i], h[best]);
    i = best;
  }
  return out;
}

// --------------------------------------------------------------------------
// Scheduling and capture
// --------------------------------------------------------------------------

void Engine::schedule_for(int node, Cycles t, EventFn fn) {
  if (!par_active_) {
    schedule(t, std::move(fn));
    return;
  }
  if (!par_running_) {
    // Setup phase, before workers exist: sequenced directly, in call order —
    // the same seq numbers the sequential engine hands out at setup.
    par_schedule_on(node, t, std::move(fn));
    return;
  }
  const ExecCtx& c = tls();
  AECDSM_CHECK_MSG(c.eng == this && c.node == node,
                   "cross-node schedule_for(" << node << ") from node " << c.node);
  par_schedule_current(t, std::move(fn));
}

void Engine::par_schedule_on(int node, Cycles t, EventFn fn) {
  PNode& nd = pnodes_[static_cast<std::size_t>(node)];
  AECDSM_CHECK(t >= nd.now);
  par_push(node, par_alloc(node, t, seq_++, std::move(fn)));
}

void Engine::par_schedule_current(Cycles t, EventFn fn, bool exclusive) {
  const ExecCtx& c = tls();
  AECDSM_CHECK_MSG(c.eng == this && c.node >= 0,
                   "schedule() outside any event in parallel mode; "
                   "use schedule_for() with an owning node");
  PNode& nd = pnodes_[static_cast<std::size_t>(c.node)];
  AECDSM_CHECK_MSG(t >= nd.now, "event scheduled into the past: t="
                                    << t << " now=" << nd.now);
  PEvent* e = par_alloc(c.node, t, kProvisional | nd.prov_next++, std::move(fn));
  e->exclusive = exclusive;
  par_push(c.node, e);
  POp op;
  op.kind = POp::Kind::kChild;
  op.child = e;
  nd.ops.push_back(std::move(op));
}

void Engine::schedule_exclusive(Cycles t, EventFn fn) {
  if (!par_active_) {
    schedule(t, std::move(fn));
    return;
  }
  AECDSM_CHECK_MSG(!par_running_ || par_solo_.load(std::memory_order_relaxed),
                   "schedule_exclusive from a concurrent round: the cap could "
                   "not be published before conflicting events run");
  // The cap only orders events that have not executed yet. For deliveries
  // that crossed the mesh this can never fire: the delivery time carries a
  // full lookahead margin, so it bounds every horizon under which earlier
  // rounds ran. A zero-latency self-send has no such margin — if its
  // handler lands inside the lookahead window of the capture round, an
  // already-executed event could sit past it. Abort loudly rather than
  // commit a silently nondeterministic schedule.
  Cycles frontier = 0;
  for (const PNode& nd : pnodes_) frontier = std::max(frontier, nd.now);
  AECDSM_CHECK_MSG(t >= frontier,
                   "exclusive event at " << t << " behind executed frontier "
                                         << frontier);
  par_schedule_current(t, std::move(fn), /*exclusive=*/true);
}

void Engine::capture_mesh_send(int src, int dst, std::size_t bytes,
                               EventFn deliver, bool exclusive) {
  const ExecCtx& c = tls();
  AECDSM_CHECK_MSG(c.eng == this && c.node == src,
                   "mesh send from node " << src << " captured on node " << c.node);
  AECDSM_CHECK_MSG(src != dst || exclusive,
                   "non-exclusive self-send must be scheduled, not captured");
  PNode& nd = pnodes_[static_cast<std::size_t>(src)];
  POp op;
  op.kind = POp::Kind::kSend;
  op.src = src;
  op.dst = dst;
  op.exclusive = exclusive;
  op.bytes = bytes;
  op.t_send = nd.now;
  op.deliver = std::move(deliver);
  nd.ops.push_back(std::move(op));
  nd.min_pending_send = std::min(nd.min_pending_send, nd.now);
  // A self-send delivers at t_send with no lookahead margin: hold this
  // node's own execution there until the replay pushes the delivery.
  if (src == dst) nd.self_hold = std::min(nd.self_hold, nd.now);
}

void Engine::note_local_send(std::size_t bytes) {
  const ExecCtx& c = tls();
  AECDSM_CHECK(c.eng == this && c.node >= 0);
  POp op;
  op.kind = POp::Kind::kLocalSend;
  op.bytes = bytes;
  pnodes_[static_cast<std::size_t>(c.node)].ops.push_back(std::move(op));
}

void Engine::at_commit(EventFn fn) {
  if (!parallel_running()) {
    fn();
    return;
  }
  const ExecCtx& c = tls();
  AECDSM_CHECK_MSG(c.eng == this && c.node >= 0,
                   "at_commit outside any event in parallel mode");
  POp op;
  op.kind = POp::Kind::kCommit;
  op.deliver = std::move(fn);
  pnodes_[static_cast<std::size_t>(c.node)].ops.push_back(std::move(op));
}

// --------------------------------------------------------------------------
// Horizon
// --------------------------------------------------------------------------

void Engine::publish_clock(int node) {
  PNode& nd = pnodes_[static_cast<std::size_t>(node)];
  Cycles c = nd.min_pending_send;
  if (!nd.heap.empty()) c = std::min(c, nd.heap.front()->t);
  // Release pairs with horizon()'s acquire: an event at t is only executed
  // once every clock has passed t - lookahead, so everything another node
  // did at least one lookahead earlier in simulated time happens-before it
  // on the host too. Protocol handlers rely on exactly that edge when they
  // read peer state that only message-separated events write.
  clocks_[static_cast<std::size_t>(node)].v.store(c, std::memory_order_release);
}

Cycles Engine::horizon() const {
  // A stale clock read under-estimates the horizon (clocks only grow within
  // a round) — conservative, never incorrect.
  Cycles m = kNever;
  for (const PClock& c : clocks_) m = std::min(m, c.v.load(std::memory_order_acquire));
  return m == kNever ? kNever : m + lookahead_;
}

Cycles Engine::exec_limit() const {
  // The exclusivity cap is constant within a round (only serial points
  // mutate it), so one acquire load per rescan suffices.
  return std::min(horizon(), excl_cap_.load(std::memory_order_acquire));
}

bool Engine::node_executable(int node, Cycles h) const {
  const PNode& nd = pnodes_[static_cast<std::size_t>(node)];
  if (nd.heap.empty()) return false;
  const PEvent* top = nd.heap.front();
  return top->t < h && top->t < nd.self_hold && !top->exclusive;
}

// --------------------------------------------------------------------------
// Workers
// --------------------------------------------------------------------------

bool Engine::try_execute(int node, Cycles h, bool force) {
  PNode& nd = pnodes_[static_cast<std::size_t>(node)];
  if (force) {
    AECDSM_CHECK(!nd.heap.empty());
  } else if (!node_executable(node, h)) {
    return false;
  }
  PEvent* e = par_pop(node);
  if (e->exclusive) {
    // Only a solo_step pops an exclusive event — a serial point.
    excl_pending_.erase(excl_pending_.find(e->t));
    excl_cap_.store(excl_pending_.empty() ? kNever : *excl_pending_.begin(),
                    std::memory_order_release);
  }
  nd.now = e->t;
  ExecCtx& c = tls();
  const ExecCtx saved = c;
  c = ExecCtx{this, node};
  e->op_begin = static_cast<std::uint32_t>(nd.ops.size());
  bool ok = true;
  try {
    e->fn();
  } catch (...) {
    ok = false;
    {
      std::lock_guard<std::mutex> lk(error_mu_);
      // Keep the globally earliest failure in (t, key) order: the closest
      // deterministic match for "the event the sequential engine would have
      // failed on".
      if (first_error_ == nullptr || e->t < error_t_ ||
          (e->t == error_t_ && e->key < error_key_)) {
        first_error_ = std::current_exception();
        error_t_ = e->t;
        error_key_ = e->key;
      }
    }
    par_abort_.store(true, std::memory_order_release);
  }
  c = saved;
  e->op_count = static_cast<std::uint32_t>(nd.ops.size()) - e->op_begin;
  nd.done.push_back(e);
  publish_clock(node);
  return ok;
}

void Engine::worker_loop(int worker) {
  const int n = static_cast<int>(pnodes_.size());
  std::vector<int> owned;
  for (int p = worker; p < n; p += par_threads_) owned.push_back(p);

  std::uint64_t polled = 0;
  std::uint64_t gen =
      wake_[static_cast<std::size_t>(worker)].gen.load(std::memory_order_acquire);

  std::vector<char> woke(static_cast<std::size_t>(par_threads_), 0);

  while (!par_done_.load(std::memory_order_acquire)) {
    bool progressed = false;
    if (!par_abort_.load(std::memory_order_acquire)) {
      Cycles h = exec_limit();
      for (int node : owned) {
        while (try_execute(node, h)) {
          progressed = true;
          if (has_deadline_ && (++polled & 0x3FFu) == 0 &&
              std::chrono::steady_clock::now() >= deadline_) {
            timed_out_.store(true, std::memory_order_release);
            par_abort_.store(true, std::memory_order_release);
            break;
          }
          if (par_abort_.load(std::memory_order_relaxed)) break;
          h = exec_limit();
        }
        if (par_abort_.load(std::memory_order_relaxed)) break;
        h = exec_limit();
      }
    }
    if (progressed) continue;

    // Idle. The last worker to arrive owns the round boundary: every other
    // worker is parked on its wake word and can only resume through a bump,
    // so the boundary owner probes all heaps authoritatively and either
    // wakes the workers whose nodes are executable (someone idled on a stale
    // horizon snapshot) or runs the replay at true quiescence.
    //
    // Waking transfers the idle slot: the waker decrements the count on the
    // parked worker's behalf (a bump and a slot release are always paired),
    // so the count reaches par_threads_ only when no worker has work even if
    // a woken worker has not been scheduled yet.
    const std::uint32_t count =
        idle_state_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (count == static_cast<std::uint32_t>(par_threads_)) {
      std::uint32_t expect = count;
      if (idle_state_.compare_exchange_strong(expect, count | kReplayClaim,
                                              std::memory_order_acq_rel)) {
        bool finish = false;
        if (!par_abort_.load(std::memory_order_acquire)) {
          try {
            bool runnable = false;
            const Cycles h0 = exec_limit();
            for (int p = 0; p < n; ++p) {
              if (node_executable(p, h0)) {
                runnable = true;
                break;
              }
            }
            if (!runnable) {
              dbg_replays_.fetch_add(1, std::memory_order_relaxed);
              replay_round();
              // Exclusive (or lookahead-starved) events block every node:
              // at quiescence the sequentially next event is simply the
              // global minimum, so step it alone — with all earlier events
              // committed this is exact sequential semantics — until a
              // round opens up or the heaps drain.
              for (;;) {
                bool empty = true;
                for (const PNode& nd : pnodes_) {
                  if (!nd.heap.empty()) {
                    empty = false;
                    break;
                  }
                }
                if (empty || par_abort_.load(std::memory_order_acquire)) {
                  finish = true;
                  break;
                }
                const Cycles lim = exec_limit();
                bool open = false;
                for (int p = 0; p < n; ++p) {
                  if (node_executable(p, lim)) {
                    open = true;
                    break;
                  }
                }
                if (open) break;
                solo_step();
              }
            } else {
              dbg_stale_.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (...) {
            // A CHECK in replay — an engine invariant, not an event failure.
            {
              std::lock_guard<std::mutex> lk(error_mu_);
              if (first_error_ == nullptr) {
                first_error_ = std::current_exception();
                error_t_ = 0;
                error_key_ = 0;
              }
            }
            par_abort_.store(true, std::memory_order_release);
            finish = true;
          }
        } else {
          finish = true;
        }
        if (finish) {
          par_done_.store(true, std::memory_order_release);
          for (int v = 0; v < par_threads_; ++v) {
            if (v != worker) wake_worker(v);
          }
          idle_state_.fetch_sub(kReplayClaim + 1, std::memory_order_acq_rel);
          return;
        }
        // Heaps are still exclusively ours (parked workers resume only via
        // our bumps): wake the owners of now-executable nodes; our own nodes
        // are probed by continuing into the main loop.
        std::fill(woke.begin(), woke.end(), 0);
        const Cycles h = exec_limit();
        for (int p = 0; p < n; ++p) {
          const int v = p % par_threads_;
          if (v != worker && woke[static_cast<std::size_t>(v)] == 0 &&
              node_executable(p, h)) {
            woke[static_cast<std::size_t>(v)] = 1;
            wake_worker(v);
          }
        }
        idle_state_.fetch_sub(kReplayClaim + 1, std::memory_order_acq_rel);
        continue;
      }
      // Claim lost; park like the rest (a future bump releases our slot).
    }
    std::atomic<std::uint64_t>& my_wake =
        wake_[static_cast<std::size_t>(worker)].gen;
    for (;;) {
      const std::uint64_t g = my_wake.load(std::memory_order_acquire);
      if (g != gen) {
        gen = g;
        break;  // the waker already released our idle slot
      }
      my_wake.wait(g, std::memory_order_acquire);
    }
  }
}

/// Release a parked worker: transfer its idle slot to it and bump its wake
/// word. Callers must know `v` is parked (they hold the replay claim).
void Engine::wake_worker(int v) {
  idle_state_.fetch_sub(1, std::memory_order_acq_rel);
  wake_[static_cast<std::size_t>(v)].gen.fetch_add(1, std::memory_order_acq_rel);
  wake_[static_cast<std::size_t>(v)].gen.notify_all();
}

/// Shutdown-only: bump every wake word without slot accounting. The idle
/// count is garbage afterwards, which is fine — par_done_ is set, so no
/// replay claim can matter again.
void Engine::wake_all_workers() {
  for (PWake& w : wake_) {
    w.gen.fetch_add(1, std::memory_order_acq_rel);
    w.gen.notify_all();
  }
}

bool Engine::solo_step() {
  const int n = static_cast<int>(pnodes_.size());
  int g = -1;
  for (int p = 0; p < n; ++p) {
    const PNode& nd = pnodes_[static_cast<std::size_t>(p)];
    if (nd.heap.empty()) continue;
    if (g < 0) {
      g = p;
      continue;
    }
    const PEvent* a = nd.heap.front();
    const PEvent* b = pnodes_[static_cast<std::size_t>(g)].heap.front();
    if (a->t < b->t || (a->t == b->t && a->key < b->key)) g = p;
  }
  if (g < 0) return false;
  par_solo_.store(true, std::memory_order_relaxed);
  try_execute(g, kNever, /*force=*/true);
  par_solo_.store(false, std::memory_order_relaxed);
  replay_round();
  return true;
}

// --------------------------------------------------------------------------
// Replay: the serial commit that makes the parallel order sequential
// --------------------------------------------------------------------------

void Engine::replay_round() {
  const int n = static_cast<int>(pnodes_.size());
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);

  // K-way merge of the per-node executed lists by (t, key). A list head's
  // key is always a real seq by the time it surfaces: a provisionally keyed
  // event is created by an earlier event of the same node, whose ops were
  // replayed before the child can become the head.
  struct Head {
    Cycles t;
    std::uint64_t key;
    int node;
  };
  std::vector<Head> merge;
  merge.reserve(static_cast<std::size_t>(n));
  auto head_less = [](const Head& a, const Head& b) {
    if (a.t != b.t) return a.t > b.t;  // std::push_heap keeps a max-heap
    return a.key > b.key;
  };
  for (int p = 0; p < n; ++p) {
    if (!pnodes_[static_cast<std::size_t>(p)].done.empty()) {
      PEvent* e = pnodes_[static_cast<std::size_t>(p)].done.front();
      if ((e->key & kProvisional) != 0) {
        std::ostringstream os;
        os << "replay: provisional front on node " << p << " t=" << e->t
           << " key=" << (e->key & ~kProvisional)
           << " done=" << pnodes_[static_cast<std::size_t>(p)].done.size();
        for (int q = 0; q < n; ++q) {
          const PNode& qq = pnodes_[static_cast<std::size_t>(q)];
          for (std::size_t oi = 0; oi < qq.ops.size(); ++oi) {
            if (qq.ops[oi].kind == POp::Kind::kChild && qq.ops[oi].child == e) {
              os << " parent-op on node " << q << " op#" << oi;
            }
          }
          os << " | n" << q << " done={";
          for (std::size_t di = 0; di < qq.done.size() && di < 4; ++di) {
            os << qq.done[di]->t << "/"
               << (qq.done[di]->key & ~kProvisional)
               << ((qq.done[di]->key & kProvisional) ? "P" : "") << " ";
          }
          os << "}";
        }
        AECDSM_CHECK_MSG(false, os.str());
      }
      merge.push_back(Head{e->t, e->key, p});
    }
  }
  std::make_heap(merge.begin(), merge.end(), head_less);

  while (!merge.empty()) {
    std::pop_heap(merge.begin(), merge.end(), head_less);
    const Head h = merge.back();
    merge.pop_back();
    PNode& nd = pnodes_[static_cast<std::size_t>(h.node)];
    PEvent* e = nd.done[cursor[static_cast<std::size_t>(h.node)]++];
    for (std::uint32_t i = 0; i < e->op_count; ++i) {
      POp& op = nd.ops[e->op_begin + i];
      switch (op.kind) {
        case POp::Kind::kChild:
          // The sequential engine would assign this seq inside the parent's
          // execution; same counter, same relative position. Rewriting the
          // key in place preserves every live ordering (see header note).
          op.child->key = seq_++;
          break;
        case POp::Kind::kSend: {
          Cycles td;
          if (op.src == op.dst) {
            // Captured self-send (exclusive deliveries only): bypasses the
            // mesh with zero latency, so it lands at t_send exactly; the
            // sender's self_hold kept its own frontier there.
            local_send_note_(op.bytes);
            td = op.t_send;
          } else {
            td = mesh_resolver_(op.src, op.dst, op.bytes, op.t_send);
            AECDSM_CHECK_MSG(td >= op.t_send + lookahead_,
                             "delivery at " << td << " violates lookahead from "
                                            << op.t_send);
          }
          PNode& dst = pnodes_[static_cast<std::size_t>(op.dst)];
          AECDSM_CHECK_MSG(td >= dst.now, "delivery at " << td
                                              << " behind frontier " << dst.now);
          PEvent* d = par_alloc(op.dst, td, seq_++, std::move(op.deliver));
          d->exclusive = op.exclusive;
          par_push(op.dst, d);
          break;
        }
        case POp::Kind::kLocalSend:
          local_send_note_(op.bytes);
          break;
        case POp::Kind::kCommit:
          op.deliver();
          break;
      }
    }
    if (cursor[static_cast<std::size_t>(h.node)] < nd.done.size()) {
      PEvent* nxt = nd.done[cursor[static_cast<std::size_t>(h.node)]];
      AECDSM_CHECK((nxt->key & kProvisional) == 0);
      merge.push_back(Head{nxt->t, nxt->key, h.node});
      std::push_heap(merge.begin(), merge.end(), head_less);
    }
  }

  for (int p = 0; p < n; ++p) {
    PNode& nd = pnodes_[static_cast<std::size_t>(p)];
    for (PEvent* e : nd.done) par_free(p, e);
    nd.done.clear();
    nd.ops.clear();
    nd.min_pending_send = kNever;
    nd.self_hold = kNever;
    publish_clock(p);
  }
}

// --------------------------------------------------------------------------
// Run
// --------------------------------------------------------------------------

void Engine::run_parallel() {
  for (int p = 0; p < static_cast<int>(pnodes_.size()); ++p) publish_clock(p);
  par_running_ = true;
  // A throw escaping worker_loop (a CHECK in replay, not an event body) is
  // recorded like an event failure so every thread unwinds and joins.
  auto guarded = [this](int w) {
    try {
      worker_loop(w);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_mu_);
        if (first_error_ == nullptr) {
          first_error_ = std::current_exception();
          error_t_ = 0;
          error_key_ = 0;
        }
      }
      par_abort_.store(true, std::memory_order_release);
      par_done_.store(true, std::memory_order_release);
      wake_all_workers();
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(par_threads_ - 1));
  for (int w = 1; w < par_threads_; ++w) {
    workers.emplace_back([&guarded, w] { guarded(w); });
  }
  guarded(0);
  for (std::thread& t : workers) t.join();
  par_running_ = false;
  if (std::getenv("AECDSM_PAR_DEBUG") != nullptr) {
    std::fprintf(stderr, "par: events=%llu replays=%llu stale=%llu\n",
                 static_cast<unsigned long long>(seq_),
                 static_cast<unsigned long long>(
                     dbg_replays_.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(
                     dbg_stale_.load(std::memory_order_relaxed)));
  }
  if (first_error_ != nullptr) std::rethrow_exception(first_error_);
  if (timed_out_.load(std::memory_order_acquire)) {
    std::ostringstream os;
    os << "wall-clock timeout after " << seq_ << " events";
    throw TimeoutError(os.str());
  }
}

}  // namespace aecdsm::sim
