// Simulated compute node: local virtual clock, time-bucket accounting, the
// cooperative application thread, and the remote-request service model.
//
// Timing discipline
// -----------------
// The application thread runs ahead of global time on a private clock
// (`now_`), charging compute and hit-path memory costs locally; it commits
// to the global event queue (sync()) before every protocol-visible action
// and at least once per quantum. Incoming remote requests (page fetches,
// diff requests, manager work) are executed engine-side as "services" that
// occupy this processor: their cost is charged to the ipc bucket, either
// overlapping a blocked wait (replacing wait time, as the paper's ipc/synch
// split does) or stealing cycles from the application's next advance.
#pragma once

#include <functional>
#include <memory>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/cothread.hpp"
#include "sim/engine.hpp"

namespace aecdsm::trace {
class Recorder;
}

namespace aecdsm::sim {

/// Accounting bucket for every simulated cycle (paper figures 4-6).
enum class Bucket {
  kBusy,
  kData,
  kSynch,
  kIpc,
  kOthersCache,
  kOthersTlb,
  kOthersWb,
  kOthersMisc,
};

class Processor {
 public:
  Processor(Engine& engine, ProcId id, const SystemParams& params);
  ~Processor();

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  ProcId id() const { return id_; }

  /// Install the application body and schedule its start at time 0.
  void start(std::function<void()> body);

  // --- Application-thread side -------------------------------------------

  /// Advance the local clock by `c`, attributing the cycles to `b`.
  /// Transparently absorbs cycles stolen by services and syncs with global
  /// time once per quantum so remote requests see bounded skew.
  void advance(Cycles c, Bucket b);

  /// Commit the local clock to the global event queue: yields until global
  /// time catches up with `now()`, letting pending events (message
  /// deliveries, services) execute first.
  void sync();

  /// sync(), then block until `pred()` holds, charging the blocked cycles
  /// to `bucket` (minus any service time, which goes to ipc). Any event
  /// that may change the predicate must poke() this processor.
  void wait(Bucket bucket, const std::function<bool()>& pred);

  /// Local virtual time of this processor.
  Cycles now() const { return now_; }

  /// True while the application thread holds control (used by CHECKs).
  bool in_app_thread() const { return running_app_; }

  // --- Engine-event side ---------------------------------------------------

  /// Wake the processor if it is blocked in wait(); the predicate is then
  /// re-evaluated. Safe to call redundantly.
  void poke();

  /// Account an incoming remote request costing `handler_cost` cycles of
  /// processor attention (an interrupt is charged on top). Returns the
  /// simulated time at which the service completes, for reply scheduling.
  Cycles service(Cycles handler_cost);

  // --- Results -------------------------------------------------------------

  const TimeBreakdown& acct() const { return acct_; }
  TimeBreakdown& acct() { return acct_; }
  bool finished() const { return done_; }
  Cycles finish_time() const { return finish_time_; }
  bool blocked() const { return blocked_; }

  const SystemParams& params() const { return params_; }
  Engine& engine() { return engine_; }

  /// Attach (or detach, with nullptr) a trace sink. Service occupancy spans
  /// are recorded into it; purely observational.
  void set_recorder(trace::Recorder* rec) { recorder_ = rec; }
  trace::Recorder* recorder() const { return recorder_; }

  /// Install the fail-stop crash gate: `hold(t)` returns the release time if
  /// this node is crashed at `t`, else 0. Every application-thread resume is
  /// routed through the gate, so a crashed node makes no app progress until
  /// its window ends; the dead time is charged to the others bucket so the
  /// per-processor breakdown still sums to the finish time. Only installed
  /// when a crash schedule exists — crash-free runs never consult it.
  void set_crash_hold(std::function<Cycles(Cycles)> hold) {
    crash_hold_ = std::move(hold);
  }

 private:
  void charge(Cycles c, Bucket b);
  void absorb_stolen();
  void schedule_resume(Cycles t);      ///< resume event, gated by crash_hold_
  void yield_for_resume_at(Cycles t);  ///< schedule resume event, then yield
  void unblock_accounting(Cycles t);

  Engine& engine_;
  const ProcId id_;
  const SystemParams& params_;

  std::unique_ptr<CoThread> thread_;
  Cycles now_ = 0;
  TimeBreakdown acct_;

  // Quantum bookkeeping: local cycles accumulated since the last sync.
  Cycles since_sync_ = 0;

  // Service model.
  Cycles svc_free_ = 0;            ///< time the service "context" frees up
  Cycles stolen_ = 0;              ///< service cycles to absorb into app time
  Cycles ipc_during_block_ = 0;    ///< service cycles landed inside current block

  // Blocking state.
  bool blocked_ = false;
  Cycles block_start_ = 0;
  Bucket block_bucket_ = Bucket::kSynch;

  bool running_app_ = false;
  bool done_ = false;
  Cycles finish_time_ = 0;

  std::function<Cycles(Cycles)> crash_hold_;  ///< null unless crashes scheduled

  trace::Recorder* recorder_ = nullptr;
};

}  // namespace aecdsm::sim
