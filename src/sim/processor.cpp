#include "sim/processor.hpp"

#include <algorithm>

#include "trace/recorder.hpp"

namespace aecdsm::sim {

Processor::Processor(Engine& engine, ProcId id, const SystemParams& params)
    : engine_(engine), id_(id), params_(params) {}

Processor::~Processor() = default;

void Processor::start(std::function<void()> body) {
  AECDSM_CHECK_MSG(!thread_, "Processor::start called twice");
  thread_ = std::make_unique<CoThread>([this, b = std::move(body)] {
    // The cothread's OS thread is permanently this processor's: bind it so
    // engine calls made from application code attribute to this node.
    engine_.bind_current_thread(id_);
    running_app_ = true;
    b();
    absorb_stolen();
    running_app_ = false;
    done_ = true;
    finish_time_ = now_;
  });
  now_ = std::max(now_, engine_.now());
  schedule_resume(engine_.now());
}

void Processor::schedule_resume(Cycles t) {
  engine_.schedule_for(id_, t, [this] {
    if (crash_hold_) {
      const Cycles release = crash_hold_(engine_.now());
      if (release > engine_.now()) {
        // Fail-stop window: hold the application thread until the node
        // recovers, then resume from its last sync point.
        schedule_resume(release);
        return;
      }
      // A deferred resume lands past the local clock; the dead time is
      // charged so the breakdown still sums to the finish time.
      if (engine_.now() > now_) charge(engine_.now() - now_, Bucket::kOthersMisc);
    }
    thread_->resume();
  });
}

void Processor::charge(Cycles c, Bucket b) {
  now_ += c;
  switch (b) {
    case Bucket::kBusy: acct_.busy += c; break;
    case Bucket::kData: acct_.data += c; break;
    case Bucket::kSynch: acct_.synch += c; break;
    case Bucket::kIpc: acct_.ipc += c; break;
    case Bucket::kOthersCache: acct_.others_cache += c; break;
    case Bucket::kOthersTlb: acct_.others_tlb += c; break;
    case Bucket::kOthersWb: acct_.others_wb += c; break;
    case Bucket::kOthersMisc: acct_.others_misc += c; break;
  }
}

void Processor::absorb_stolen() {
  if (stolen_ != 0) {
    const Cycles s = stolen_;
    stolen_ = 0;
    charge(s, Bucket::kIpc);
    since_sync_ += s;
  }
}

void Processor::advance(Cycles c, Bucket b) {
  AECDSM_CHECK(running_app_);
  charge(c, b);
  absorb_stolen();
  since_sync_ += c;
  if (since_sync_ >= params_.quantum_cycles) sync();
}

void Processor::sync() {
  AECDSM_CHECK(running_app_);
  absorb_stolen();
  since_sync_ = 0;
  if (now_ > engine_.now()) yield_for_resume_at(now_);
}

void Processor::yield_for_resume_at(Cycles t) {
  schedule_resume(t);
  running_app_ = false;
  thread_->yield_to_engine();
  running_app_ = true;
}

void Processor::wait(Bucket bucket, const std::function<bool()>& pred) {
  AECDSM_CHECK(running_app_);
  sync();
  while (!pred()) {
    blocked_ = true;
    block_start_ = now_;
    block_bucket_ = bucket;
    running_app_ = false;
    thread_->yield_to_engine();
    running_app_ = true;
    // poke() cleared blocked_, performed the accounting and advanced now_.
  }
}

void Processor::poke() {
  if (!blocked_) return;
  blocked_ = false;
  unblock_accounting(engine_.now());
  schedule_resume(engine_.now());
}

void Processor::unblock_accounting(Cycles t) {
  AECDSM_CHECK_MSG(t >= block_start_, "unblock before block start");
  const Cycles dur = t - block_start_;
  const Cycles used = std::min(ipc_during_block_, dur);
  charge(dur - used, block_bucket_);
  charge(used, Bucket::kIpc);
  // Service time extending beyond the wait delays the application's
  // subsequent work; it is absorbed as stolen cycles.
  stolen_ += ipc_during_block_ - used;
  ipc_during_block_ = 0;
  AECDSM_CHECK(now_ == t);
}

Cycles Processor::service(Cycles handler_cost) {
  const Cycles arrive = engine_.now();
  const Cycles start = std::max(arrive, svc_free_);
  const Cycles dur = params_.interrupt_cycles + handler_cost;
  svc_free_ = start + dur;
  if (recorder_ != nullptr) {
    recorder_->span(id_, trace::Category::kSvc, trace::names::kService, start,
                    svc_free_, "cost", handler_cost);
  }
  if (done_) {
    // The application is gone; serving still occupies the node.
    charge(dur, Bucket::kIpc);
  } else if (blocked_) {
    ipc_during_block_ += dur;
  } else {
    stolen_ += dur;
  }
  return svc_free_;
}

}  // namespace aecdsm::sim
