// Cooperative thread: an OS thread that runs only when the simulation engine
// explicitly hands it control, and always hands control back before the
// engine proceeds. At any instant at most one cooperative thread (or the
// engine itself) is running, which makes the simulation deterministic while
// letting application code keep its natural sequential structure — the same
// contract Mint gave the original paper's workloads.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace aecdsm::sim {

/// Thrown inside a cooperative thread when the engine tears it down early
/// (e.g., a failed run being unwound). Body code should not catch it.
struct CoThreadCancelled {};

class CoThread {
 public:
  /// The body starts suspended; nothing runs until the first resume().
  explicit CoThread(std::function<void()> body);

  /// Joins the OS thread. If the body has not finished, it is cancelled
  /// (resumed with the cancel flag set, unwinding via CoThreadCancelled).
  ~CoThread();

  CoThread(const CoThread&) = delete;
  CoThread& operator=(const CoThread&) = delete;

  /// Engine side: run the thread until it yields or finishes. If the body
  /// exited with an exception, it is rethrown here on the engine side.
  void resume();

  /// Thread side: suspend and return control to the engine. Throws
  /// CoThreadCancelled if the engine is tearing the thread down.
  void yield_to_engine();

  bool finished() const { return finished_; }

 private:
  enum class Turn { kEngine, kThread };

  void thread_main(std::function<void()> body);

  std::mutex mu_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kEngine;
  bool finished_ = false;
  bool cancel_ = false;
  std::exception_ptr error_;
  std::thread os_thread_;
};

}  // namespace aecdsm::sim
