// Discrete-event core of the execution-driven simulator.
//
// All simulation activity — processor wakeups, message deliveries, manager
// processing — flows through one time-ordered event queue, processed on the
// engine thread. Cooperative application threads only run while the engine
// is suspended inside their resume handshake, so the whole simulation is a
// single logical thread and therefore deterministic.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace aecdsm::sim {

class Engine {
 public:
  using EventFn = std::function<void()>;

  /// Schedule `fn` at absolute simulated time `t`. Events never run before
  /// already-executed ones: t must be >= now() (checked).
  void schedule(Cycles t, EventFn fn) {
    AECDSM_CHECK_MSG(t >= now_, "event scheduled into the past: t=" << t
                                                                    << " now=" << now_);
    heap_.push_back(Event{t, seq_++, std::move(fn)});
    sift_up(heap_.size() - 1);
  }

  /// Time of the event currently (or most recently) being processed.
  Cycles now() const { return now_; }

  /// Abort run() with TimeoutError once the host wall clock passes
  /// `deadline` (BatchRunner --cell-timeout). Polled between events, so a
  /// single stuck event is not interruptible — good enough for runaway
  /// simulations, which are event-loop-bound.
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Process events until the queue drains. The caller checks afterwards
  /// that every processor finished (an empty queue with blocked processors
  /// is a protocol deadlock).
  void run() {
    std::uint64_t polled = 0;
    while (!heap_.empty()) {
      if (has_deadline_ && (++polled & 0x3FFu) == 0 &&
          std::chrono::steady_clock::now() >= deadline_) {
        std::ostringstream os;
        os << "wall-clock timeout after " << seq_ << " events at simulated time "
           << now_;
        throw TimeoutError(os.str());
      }
      Event ev = pop_min();
      AECDSM_CHECK(ev.t >= now_);
      now_ = ev.t;
      ev.fn();
    }
  }

  bool idle() const { return heap_.empty(); }

  std::uint64_t events_processed() const { return seq_; }

 private:
  struct Event {
    Cycles t;
    std::uint64_t seq;  ///< FIFO tie-break for equal-time events
    EventFn fn;
  };

  // The event queue is a hand-rolled binary min-heap rather than a
  // std::priority_queue: top() of the standard adaptor is const, so moving
  // the handler out would need a const_cast. Owning the vector lets pop_min
  // move the element legitimately. Ordering is (t, seq): earliest time
  // first, FIFO among equal times.
  static bool earlier(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && earlier(heap_[l], heap_[best])) best = l;
      if (r < n && earlier(heap_[r], heap_[best])) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  Event pop_min() {
    Event out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  std::vector<Event> heap_;
  std::uint64_t seq_ = 0;
  Cycles now_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace aecdsm::sim
