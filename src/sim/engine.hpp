// Discrete-event core of the execution-driven simulator.
//
// All simulation activity — processor wakeups, message deliveries, manager
// processing — flows through one time-ordered event queue, processed on the
// engine thread. Cooperative application threads only run while the engine
// is suspended inside their resume handshake, so the whole simulation is a
// single logical thread and therefore deterministic.
//
// Parallel mode (enable_parallel)
// -------------------------------
// A conservative parallel-DES mode partitions events by owning node and runs
// node groups on worker threads. The mesh's minimum cross-node latency L is
// the lookahead: an event at time t may execute once t < min(node clocks)+L,
// where a node's clock lower-bounds everything it can still cause (its next
// pending event, or its earliest not-yet-committed cross-node send). Clocks
// are published with atomics, so the horizon leapfrogs forward while workers
// run — message-free stretches parallelize without any barrier. When no node
// can advance (quiescence), a serial replay walks the executed events in the
// sequential engine's exact (time, seq) order, assigns the same seq numbers
// the sequential engine would have, and resolves captured mesh sends against
// the real contention state in that order. Replay-created deliveries always
// land at or beyond every node's executed frontier (they are at least one
// lookahead past the quiescent horizon), so parallel execution reproduces
// the sequential event order — and therefore every artifact byte — exactly.
// See DESIGN.md ("Parallel engine") for the full determinism argument.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace aecdsm::sim {

class Engine {
 public:
  using EventFn = std::function<void()>;

  /// Resolves one captured cross-node mesh send at replay time: routes the
  /// message against the real contention state and returns the delivery
  /// time. Installed by the run driver (it wraps MeshNetwork::resolve_send).
  using MeshResolver =
      std::function<Cycles(int src, int dst, std::size_t bytes, Cycles t_send)>;
  /// Commits the statistics of one node-local (src == dst) send at replay.
  using LocalSendNote = std::function<void(std::size_t bytes)>;

  ~Engine();

  /// Schedule `fn` at absolute simulated time `t`. Events never run before
  /// already-executed ones: t must be >= now() (checked).
  void schedule(Cycles t, EventFn fn) {
    if (par_active_) {
      par_schedule_current(t, std::move(fn));
      return;
    }
    AECDSM_CHECK_MSG(t >= now_, "event scheduled into the past: t=" << t
                                                                    << " now=" << now_);
    heap_.push_back(Event{t, seq_++, std::move(fn)});
    sift_up(heap_.size() - 1);
  }

  /// schedule() with an explicit owning node, for call sites that run
  /// outside any event (setup-time Processor::start) or that know their
  /// owner statically. Identical to schedule() in sequential mode.
  void schedule_for(int node, Cycles t, EventFn fn);

  /// Time of the event currently (or most recently) being processed. In
  /// parallel mode, the executing node's local event time (well-defined on
  /// worker threads and on bound application threads).
  Cycles now() const {
    if (par_active_) {
      const ExecCtx& c = tls();
      if (c.eng == this && c.node >= 0) return pnodes_[c.node].now;
    }
    return now_;
  }

  /// Abort run() with TimeoutError once the host wall clock passes
  /// `deadline` (BatchRunner --cell-timeout). Polled between events — in
  /// parallel mode by every worker group, not just the coordinator — so a
  /// single stuck event is not interruptible; good enough for runaway
  /// simulations, which are event-loop-bound.
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Process events until the queue drains. The caller checks afterwards
  /// that every processor finished (an empty queue with blocked processors
  /// is a protocol deadlock).
  void run() {
    if (par_active_) {
      run_parallel();
      return;
    }
    std::uint64_t polled = 0;
    while (!heap_.empty()) {
      if (has_deadline_ && (++polled & 0x3FFu) == 0 &&
          std::chrono::steady_clock::now() >= deadline_) {
        std::ostringstream os;
        os << "wall-clock timeout after " << seq_ << " events at simulated time "
           << now_;
        throw TimeoutError(os.str());
      }
      Event ev = pop_min();
      AECDSM_CHECK(ev.t >= now_);
      now_ = ev.t;
      ev.fn();
    }
  }

  bool idle() const {
    if (par_active_) {
      for (const PNode& n : pnodes_) {
        if (!n.heap.empty()) return false;
      }
      return true;
    }
    return heap_.empty();
  }

  /// Total schedule() calls so far. Parallel replay assigns the sequential
  /// engine's seq numbers, so this matches the sequential count exactly.
  std::uint64_t events_processed() const { return seq_; }

  // --- Parallel mode --------------------------------------------------------

  /// Switch this engine into conservative parallel mode before any event is
  /// scheduled. `lookahead` must lower-bound the send-to-delivery latency of
  /// every possible cross-node message. No-op when threads <= 1.
  void enable_parallel(int threads, int num_nodes, Cycles lookahead,
                       MeshResolver resolver, LocalSendNote local_note);

  bool parallel() const { return par_active_; }

  /// True while parallel workers are executing events (MeshNetwork routes
  /// sends into capture_mesh_send instead of scheduling directly).
  bool parallel_running() const { return par_active_ && par_running_; }

  /// Record a cross-node send made by the currently executing node. The
  /// send is routed (and its delivery scheduled) during the next replay, in
  /// sequential event order. An `exclusive` send's delivery event runs solo
  /// (see schedule_exclusive); src == dst is allowed for exclusive sends —
  /// the delivery lands at t_send (local sends bypass the mesh) and the
  /// node holds its own execution until the replay pushes it.
  void capture_mesh_send(int src, int dst, std::size_t bytes, EventFn deliver,
                         bool exclusive = false);

  /// Like schedule(), but the event is *exclusive*: in parallel mode it only
  /// executes at global quiescence, alone, with every earlier (t, key) event
  /// committed and no other worker running — so its body may read and write
  /// cross-node shared state exactly as under the sequential engine. In
  /// sequential mode this is schedule().
  ///
  /// Soundness requires the exclusivity cap to be published before any
  /// worker could pick a conflicting event, so in parallel-running mode this
  /// may only be called from a serial context: from inside an exclusive
  /// event (which runs solo), the shape Machine::post_exclusive guarantees.
  void schedule_exclusive(Cycles t, EventFn fn);

  /// Record a node-local send's statistics for replay-ordered commit.
  void note_local_send(std::size_t bytes);

  /// Run `fn` in sequential commit order. Sequentially (and outside a
  /// parallel round) it runs inline; during a parallel round it is captured
  /// with the executing event and invoked at replay, serially, in the exact
  /// (time, seq) order the sequential engine would have produced. For
  /// write-only bookkeeping that several nodes' events mutate but no event
  /// reads back — e.g. a scoring-only predictor — this gives the sequential
  /// final state without serializing the events themselves. The closure must
  /// not schedule events or send messages.
  void at_commit(EventFn fn);

  /// Bind the calling thread to `node` for event attribution — called once
  /// per application cothread. Harmless in sequential mode.
  void bind_current_thread(int node) { tls() = ExecCtx{this, node}; }

 private:
  struct Event {
    Cycles t;
    std::uint64_t seq;  ///< FIFO tie-break for equal-time events
    EventFn fn;
  };

  // --- Parallel-mode data ---------------------------------------------------

  /// Provisional-order bit: keys of events created during the current round
  /// order after every already-sequenced event (same-time ties included),
  /// and among themselves by per-node creation order — exactly the relative
  /// order replay's real seq assignment produces, so rewriting a key from
  /// provisional to real never reorders a pair of live events.
  static constexpr std::uint64_t kProvisional = std::uint64_t{1} << 63;
  static constexpr Cycles kNever = ~Cycles{0};

  struct PEvent {
    Cycles t = 0;
    std::uint64_t key = 0;  ///< final seq, or kProvisional | creation order
    bool exclusive = false;  ///< runs solo at quiescence (schedule_exclusive)
    EventFn fn;
    std::uint32_t op_begin = 0;  ///< first captured op (set at execution)
    std::uint32_t op_count = 0;
  };

  struct POp {
    enum class Kind : std::uint8_t { kChild, kSend, kLocalSend, kCommit };
    Kind kind = Kind::kChild;
    PEvent* child = nullptr;  ///< kChild: the scheduled same-node event
    int src = -1, dst = -1;   ///< kSend
    bool exclusive = false;   ///< kSend: delivery event runs solo
    std::size_t bytes = 0;    ///< kSend / kLocalSend
    Cycles t_send = 0;        ///< kSend
    EventFn deliver;          ///< kSend / kCommit
  };

  struct alignas(64) PClock {
    std::atomic<Cycles> v{0};
  };

  /// Per-worker parking word: a worker with no executable events waits on
  /// its own generation counter, and the round-boundary claimant wakes only
  /// the workers whose nodes became runnable — node-to-node ping-pong within
  /// one worker's group costs no wakeups at all.
  struct alignas(64) PWake {
    std::atomic<std::uint64_t> gen{0};
  };

  struct PNode {
    std::vector<PEvent*> heap;  ///< min-heap by (t, key)
    Cycles now = 0;
    std::vector<POp> ops;          ///< this round's captured ops, call order
    std::vector<PEvent*> done;     ///< this round's executed events, in order
    Cycles min_pending_send = kNever;
    /// Earliest uncommitted *self*-send (src == dst) delivery this node
    /// captured. Its delivery event is only pushed at replay, so the node
    /// must not run its own events at or past that time until then — other
    /// nodes are unaffected (the delivery is same-node and min_pending_send
    /// already bounds the clock).
    Cycles self_hold = kNever;
    std::uint64_t prov_next = 0;   ///< provisional key counter
    std::deque<PEvent> pool;       ///< stable event storage
    std::vector<PEvent*> free_list;
  };

  struct ExecCtx {
    Engine* eng = nullptr;
    int node = -1;
  };
  static ExecCtx& tls() {
    static thread_local ExecCtx c;
    return c;
  }

  // --- Sequential engine ----------------------------------------------------

  // The event queue is a hand-rolled binary min-heap rather than a
  // std::priority_queue: top() of the standard adaptor is const, so moving
  // the handler out would need a const_cast. Owning the vector lets pop_min
  // move the element legitimately. Ordering is (t, seq): earliest time
  // first, FIFO among equal times.
  static bool earlier(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && earlier(heap_[l], heap_[best])) best = l;
      if (r < n && earlier(heap_[r], heap_[best])) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  Event pop_min() {
    Event out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  // --- Parallel engine (engine.cpp) ----------------------------------------

  void run_parallel();
  void par_schedule_current(Cycles t, EventFn fn, bool exclusive = false);
  void par_schedule_on(int node, Cycles t, EventFn fn);
  PEvent* par_alloc(int node, Cycles t, std::uint64_t key, EventFn fn);
  void par_free(int node, PEvent* e);
  void par_push(int node, PEvent* e);
  PEvent* par_pop(int node);
  void publish_clock(int node);
  Cycles horizon() const;
  Cycles exec_limit() const;
  void worker_loop(int worker);
  bool try_execute(int node, Cycles h, bool force = false);
  bool node_executable(int node, Cycles h) const;
  /// Pop and execute the globally earliest pending event, alone, then
  /// replay. Claimant-only, at quiescence. Returns false if every heap was
  /// empty.
  bool solo_step();
  void replay_round();
  void wake_worker(int v);
  void wake_all_workers();

  std::vector<Event> heap_;
  std::uint64_t seq_ = 0;
  Cycles now_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  // Parallel state (inert unless par_active_).
  bool par_active_ = false;
  bool par_running_ = false;
  int par_threads_ = 1;
  Cycles lookahead_ = 0;
  MeshResolver mesh_resolver_;
  LocalSendNote local_send_note_;
  std::vector<PNode> pnodes_;
  std::vector<PClock> clocks_;
  std::vector<PWake> wake_;
  /// Idle-worker count plus kReplayClaim. Leaving idle (to touch event
  /// heaps) and claiming a replay (which mutates every heap) are CAS
  /// transitions on this one word, so they linearize: no worker can probe a
  /// heap while a replay runs, and no replay can start once a worker has
  /// committed to waking.
  std::atomic<std::uint32_t> idle_state_{0};
  static constexpr std::uint32_t kReplayClaim = std::uint32_t{1} << 31;
  /// Times of pending exclusive events. Mutated only at serial points — a
  /// replay push, a solo_step pop, or a schedule_exclusive from inside a
  /// solo execution — all under the replay claim, so the published cap is
  /// constant within a round: a worker can never race past a cap it has not
  /// seen. excl_cap_ mirrors the minimum for lock-free reads by workers.
  std::multiset<Cycles> excl_pending_;
  std::atomic<Cycles> excl_cap_{kNever};
  /// True while the claimant is executing an event solo (legal context for
  /// schedule_exclusive in parallel-running mode).
  std::atomic<bool> par_solo_{false};
  std::atomic<bool> par_abort_{false};
  std::atomic<bool> par_done_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<std::uint64_t> dbg_replays_{0};
  std::atomic<std::uint64_t> dbg_stale_{0};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
  Cycles error_t_ = kNever;
  std::uint64_t error_key_ = ~std::uint64_t{0};
};

}  // namespace aecdsm::sim
