// Discrete-event core of the execution-driven simulator.
//
// All simulation activity — processor wakeups, message deliveries, manager
// processing — flows through one time-ordered event queue, processed on the
// engine thread. Cooperative application threads only run while the engine
// is suspended inside their resume handshake, so the whole simulation is a
// single logical thread and therefore deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace aecdsm::sim {

class Engine {
 public:
  using EventFn = std::function<void()>;

  /// Schedule `fn` at absolute simulated time `t`. Events never run before
  /// already-executed ones: t must be >= now() (checked).
  void schedule(Cycles t, EventFn fn) {
    AECDSM_CHECK_MSG(t >= now_, "event scheduled into the past: t=" << t
                                                                    << " now=" << now_);
    queue_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Time of the event currently (or most recently) being processed.
  Cycles now() const { return now_; }

  /// Process events until the queue drains. The caller checks afterwards
  /// that every processor finished (an empty queue with blocked processors
  /// is a protocol deadlock).
  void run() {
    while (!queue_.empty()) {
      // priority_queue::top is const; the handler is moved out via const_cast,
      // which is safe because the element is popped immediately after.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      AECDSM_CHECK(ev.t >= now_);
      now_ = ev.t;
      ev.fn();
    }
  }

  bool idle() const { return queue_.empty(); }

  std::uint64_t events_processed() const { return seq_; }

 private:
  struct Event {
    Cycles t;
    std::uint64_t seq;  ///< FIFO tie-break for equal-time events
    EventFn fn;

    bool operator>(const Event& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t seq_ = 0;
  Cycles now_ = 0;
};

}  // namespace aecdsm::sim
