#include "dsm/machine.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "dsm/context.hpp"
#include "dsm/protocol.hpp"

namespace aecdsm::dsm {

Machine::Machine(const SystemParams& params, std::size_t max_shared_bytes)
    : params_(params),
      net_(engine_, params_),
      transport_(engine_, net_, params_),
      num_pages_((max_shared_bytes + params.page_bytes - 1) / params.page_bytes) {
  logging::init_from_env();
  const std::string err = params_.validate();
  AECDSM_CHECK_MSG(err.empty(), err);
  nodes_.resize(static_cast<std::size_t>(params_.num_procs));
  sync_shards_.resize(static_cast<std::size_t>(params_.num_procs));
  for (int p = 0; p < params_.num_procs; ++p) {
    Node& n = nodes_[static_cast<std::size_t>(p)];
    n.proc = std::make_unique<sim::Processor>(engine_, p, params_);
    n.store = std::make_unique<mem::PageStore>(params_, num_pages_);
    n.cache = std::make_unique<mem::CacheModel>(params_);
    n.tlb = std::make_unique<mem::TlbModel>(params_);
    n.wb = std::make_unique<mem::WriteBuffer>(params_);
  }
}

Machine::~Machine() = default;

void Machine::set_recorder(trace::Recorder* rec) {
  recorder_ = rec;
  transport_.set_recorder(rec);
  for (Node& n : nodes_) n.proc->set_recorder(rec);
}

GAddr Machine::alloc_shared(std::size_t bytes) {
  AECDSM_CHECK(bytes > 0);
  // Every allocation starts on a fresh page so distinct arrays never share
  // a coherence unit (false sharing still occurs within an array, as in
  // the real applications).
  const GAddr base = alloc_cursor_;
  const std::size_t pages = (bytes + params_.page_bytes - 1) / params_.page_bytes;
  alloc_cursor_ += pages * params_.page_bytes;
  AECDSM_CHECK_MSG(alloc_cursor_ <= num_pages_ * params_.page_bytes,
                   "shared arena exhausted: need " << alloc_cursor_ << " bytes");
  return base;
}

void Machine::post(ProcId from, ProcId to, std::size_t bytes, Cycles service_cost,
                   std::function<void()> handler) {
  transport_.send(from, to, bytes,
                  [this, to, service_cost, h = std::move(handler)]() mutable {
                    const Cycles done = node(to).proc->service(service_cost);
                    engine_.schedule(done, std::move(h));
                  });
}

void Machine::post_exclusive(ProcId from, ProcId to, std::size_t bytes,
                             Cycles service_cost, std::function<void()> handler) {
  // The delivery wrapper itself runs solo (transport flag), so re-arming the
  // handler through schedule_exclusive happens from a serial context.
  transport_.send(
      from, to, bytes,
      [this, to, service_cost, h = std::move(handler)]() mutable {
        const Cycles done = node(to).proc->service(service_cost);
        engine_.schedule_exclusive(done, std::move(h));
      },
      /*exclusive=*/true);
}

void Machine::post_best_effort(ProcId from, ProcId to, std::size_t bytes,
                               Cycles service_cost, std::function<void()> handler) {
  // The handler is copied, not moved, into the engine: a duplicated copy
  // delivers (and services) twice, and the receiver must be idempotent.
  transport_.send_best_effort(
      from, to, bytes, [this, to, service_cost, h = std::move(handler)]() {
        const Cycles done = node(to).proc->service(service_cost);
        engine_.schedule(done, h);
      });
}

}  // namespace aecdsm::dsm
