// Run driver: wires an App, a protocol suite and a parameter block into a
// Machine, executes the simulation to completion, and collects RunStats.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "dsm/app.hpp"
#include "dsm/machine.hpp"
#include "dsm/protocol.hpp"

namespace aecdsm::dsm {

/// A named way of building one Protocol instance per node. The factory is
/// called once per processor, in pid order, after app setup; factories that
/// need shared manager state create it on first call.
struct ProtocolSuite {
  std::string name;
  std::function<std::unique_ptr<Protocol>(Machine&, ProcId)> make;
};

struct RunConfig {
  SystemParams params;
  std::uint64_t seed = 42;
  /// Abort the simulation with TimeoutError once this much host wall-clock
  /// time has elapsed (0 = no limit). Used by BatchRunner --cell-timeout.
  double wall_timeout_sec = 0.0;
  /// Optional trace sink (trace/recorder.hpp); installed on the machine
  /// before the run. Purely observational — a traced run is cycle-identical
  /// to an untraced one. Not part of SystemParams on purpose: trace state
  /// must never fold into cell content hashes or cached artifacts.
  trace::Recorder* recorder = nullptr;
  /// Worker threads for the engine's conservative parallel mode (1 =
  /// sequential). Results are byte-identical for every value, so this is a
  /// host execution knob like `recorder`: deliberately not in SystemParams,
  /// and therefore never part of cellcache keys. Traced runs fall back to
  /// the sequential engine (span emission is not replay-ordered).
  int engine_threads = 1;
};

/// Execute `app` under `suite`; throws SimError on deadlock or invariant
/// violation. The returned stats include whether the app's oracle check
/// passed (RunStats::result_valid).
RunStats run_app(App& app, const ProtocolSuite& suite, const RunConfig& config);

/// Mark pages valid at their round-robin initial owner (page % nprocs) —
/// the initial data distribution both protocols assume.
void init_round_robin_validity(Machine& m, ProcId self);

}  // namespace aecdsm::dsm
