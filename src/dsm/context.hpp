// Application-facing DSM interface — the shared-memory abstraction the SPMD
// workloads program against: typed shared reads/writes, locks, barriers,
// acquire notices and modeled compute.
//
// The read/write fast path (valid, unprotected page) never synchronizes
// with global simulated time: it charges the access, TLB, cache and
// write-buffer costs to the local clock and touches the node's page frame
// directly. Only faults and synchronization operations enter the protocol.
#pragma once

#include <cstring>
#include <set>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dsm/machine.hpp"
#include "dsm/protocol.hpp"
#include "sim/processor.hpp"

namespace aecdsm::dsm {

class Context {
 public:
  Context(Machine& machine, ProcId self, std::uint64_t seed);

  ProcId pid() const { return self_; }
  int nprocs() const { return machine_.nprocs(); }
  Rng& rng() { return rng_; }
  sim::Processor& proc() { return *machine_.node(self_).proc; }
  Machine& machine() { return machine_; }

  /// Model `c` cycles of private computation (always-hit accesses included).
  void compute(Cycles c) { proc().advance(c, sim::Bucket::kBusy); }

  template <typename T>
  T read(GAddr addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    access(addr, sizeof(T), /*is_write=*/false);
    T out;
    std::memcpy(&out, raw(addr), sizeof(T));
    return out;
  }

  template <typename T>
  void write(GAddr addr, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    access(addr, sizeof(T), /*is_write=*/true);
    std::memcpy(raw(addr), &value, sizeof(T));
  }

  void lock(LockId l);
  void unlock(LockId l);
  void barrier();

  /// Advance notice of an upcoming lock() — feeds AEC's virtual queue.
  void lock_acquire_notice(LockId l);

  bool in_critical_section() const { return !locks_held_.empty(); }
  const std::set<LockId>& locks_held() const { return locks_held_; }
  std::uint32_t barrier_step() const { return step_; }

  // --- Protocol support ------------------------------------------------------

  /// Drop cached lines of a page whose contents changed underneath us.
  void invalidate_cache_page(PageId page);

 private:
  void access(GAddr addr, std::size_t size, bool is_write);

  /// Host pointer to the byte at `addr` in this node's page frame.
  unsigned char* raw(GAddr addr);

  Machine& machine_;
  const ProcId self_;
  Rng rng_;
  std::set<LockId> locks_held_;
  std::uint32_t step_ = 0;
  std::vector<std::uint32_t> page_access_step_;  ///< last step each page was touched (+1; 0 = never)
};

}  // namespace aecdsm::dsm
