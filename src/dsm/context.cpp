#include "dsm/context.hpp"

#include <cstdlib>

#include "common/log.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::dsm {

namespace {
/// Debug watchpoint: AECDSM_TRACE_PAGE/AECDSM_TRACE_WORD name a shared word
/// whose application-level writes are logged.
PageId ctx_trace_page() {
  static const PageId pg = [] {
    const char* v = std::getenv("AECDSM_TRACE_PAGE");
    return v == nullptr ? kNoPage : static_cast<PageId>(std::atoi(v));
  }();
  return pg;
}
std::size_t ctx_trace_word() {
  static const std::size_t w = [] {
    const char* v = std::getenv("AECDSM_TRACE_WORD");
    return v == nullptr ? std::size_t{0} : static_cast<std::size_t>(std::atoi(v));
  }();
  return w;
}
}  // namespace

Context::Context(Machine& machine, ProcId self, std::uint64_t seed)
    : machine_(machine),
      self_(self),
      rng_(Rng(seed).split(static_cast<std::uint64_t>(self) + 1)),
      page_access_step_(machine.num_pages(), 0) {}

unsigned char* Context::raw(GAddr addr) {
  const PageId pg = static_cast<PageId>(addr / machine_.params().page_bytes);
  const std::size_t off = addr % machine_.params().page_bytes;
  mem::PageFrame& f = machine_.node(self_).store->frame(pg);
  return reinterpret_cast<unsigned char*>(f.data.data()) + off;
}

void Context::access(GAddr addr, std::size_t size, bool is_write) {
  const auto& params = machine_.params();
  AECDSM_CHECK_MSG(addr % size == 0, "misaligned shared access at " << addr);
  AECDSM_CHECK_MSG(addr + size <= machine_.shared_bytes_used(),
                   "shared access beyond allocated arena: " << addr);
  const PageId pg = static_cast<PageId>(addr / params.page_bytes);
  Node& node = machine_.node(self_);
  sim::Processor& p = *node.proc;

  // The access instruction itself.
  p.advance(1, sim::Bucket::kBusy);

  // Address translation.
  const Cycles tlb_penalty = node.tlb->access(pg);
  if (tlb_penalty != 0) p.advance(tlb_penalty, sim::Bucket::kOthersTlb);

  // Page-level checks — the slow path enters the coherence protocol.
  mem::PageFrame& f = node.store->frame(pg);
  if (!f.valid || (is_write && f.write_protected)) {
    p.sync();
    const Cycles t0 = p.now();
    const bool was_invalid = !f.valid;
    if (was_invalid && !is_write) {
      ++node.faults.read_faults;
    } else {
      ++node.faults.write_faults;
    }
    if (in_critical_section()) ++node.faults.faults_inside_cs;
    if (is_write) {
      node.protocol->on_write_fault(pg);
      AECDSM_CHECK_MSG(f.valid && !f.write_protected,
                       "protocol left page " << pg << " unwritable after write fault");
    } else {
      node.protocol->on_read_fault(pg);
      AECDSM_CHECK_MSG(f.valid, "protocol left page " << pg << " invalid after read fault");
    }
    node.faults.fault_cycles += p.now() - t0;
    if (trace::Recorder* rec = machine_.recorder()) {
      rec->span(self_, trace::Category::kMem,
                is_write ? trace::names::kFaultWrite : trace::names::kFaultRead,
                t0, p.now(), "page", pg);
    }
  }

  // Once-per-step access metadata for the protocol's barrier lists.
  if (page_access_step_[pg] != step_ + 1) {
    page_access_step_[pg] = step_ + 1;
    node.protocol->on_page_access(pg);
  }

  if (pg == ctx_trace_page()) {
    const std::size_t off_word = (addr % params.page_bytes) / kWordBytes;
    const std::size_t nwords = size >= kWordBytes ? size / kWordBytes : 1;
    // AECDSM_TRACE_WORD=-1 traces every word of the page; otherwise only
    // accesses covering the named word are logged.
    const bool all = ctx_trace_word() == static_cast<std::size_t>(-1);
    if (all || (off_word <= ctx_trace_word() &&
                ctx_trace_word() < off_word + nwords)) {
      std::int64_t v = static_cast<std::int32_t>(f.data[off_word]);
      if (size == 8 && off_word + 1 < f.data.size()) {
        v = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(f.data[off_word + 1]) << 32) |
            f.data[off_word]);
      }
      AECDSM_DEBUG("ctx p" << self_ << (is_write ? " WRITE" : " READ") << " pg"
                           << pg << " w" << off_word << " step" << step_
                           << " frame=" << v);
    }
  }

  // Cache and write buffer.
  const Cycles miss_penalty = node.cache->access(addr);
  if (miss_penalty != 0) p.advance(miss_penalty, sim::Bucket::kOthersCache);
  if (is_write) {
    const Cycles stall = node.wb->write(p.now());
    if (stall != 0) p.advance(stall, sim::Bucket::kOthersWb);
  }
}

void Context::lock(LockId l) {
  AECDSM_CHECK_MSG(locks_held_.count(l) == 0, "recursive lock " << l);
  machine_.note_lock_acquire(self_, l);
  trace::Recorder* rec = machine_.recorder();
  sim::Processor& p = *machine_.node(self_).proc;
  const Cycles t0 = p.now();
  if (rec != nullptr) {
    rec->instant(self_, trace::Category::kLock, trace::names::kLockRequest, t0,
                 "lock", l);
  }
  machine_.node(self_).protocol->acquire(l);
  if (rec != nullptr) {
    rec->span(self_, trace::Category::kLock, trace::names::kLockWait, t0,
              p.now(), "lock", l);
  }
  locks_held_.insert(l);
}

void Context::unlock(LockId l) {
  AECDSM_CHECK_MSG(locks_held_.count(l) == 1, "unlock of unheld lock " << l);
  locks_held_.erase(l);
  trace::Recorder* rec = machine_.recorder();
  sim::Processor& p = *machine_.node(self_).proc;
  const Cycles t0 = p.now();
  machine_.node(self_).protocol->release(l);
  if (rec != nullptr) {
    rec->span(self_, trace::Category::kLock, trace::names::kLockRelease, t0,
              p.now(), "lock", l);
  }
}

void Context::barrier() {
  AECDSM_CHECK_MSG(locks_held_.empty(), "barrier entered while holding a lock");
  if (self_ == 0) machine_.note_barrier_episode();
  trace::Recorder* rec = machine_.recorder();
  sim::Processor& p = *machine_.node(self_).proc;
  const Cycles t0 = p.now();
  if (rec != nullptr) {
    rec->instant(self_, trace::Category::kBarrier, trace::names::kBarrierArrive,
                 t0, "episode", machine_.barrier_episodes());
  }
  machine_.node(self_).protocol->barrier();
  if (rec != nullptr) {
    rec->span(self_, trace::Category::kBarrier, trace::names::kBarrierWait, t0,
              p.now(), "episode", machine_.barrier_episodes());
    rec->instant(self_, trace::Category::kBarrier, trace::names::kBarrierDepart,
                 p.now(), "episode", machine_.barrier_episodes());
  }
  ++step_;
}

void Context::lock_acquire_notice(LockId l) {
  machine_.node(self_).protocol->acquire_notice(l);
}

void Context::invalidate_cache_page(PageId page) {
  machine_.node(self_).cache->invalidate_page(page, machine_.params().page_bytes);
}

}  // namespace aecdsm::dsm
