// The simulated machine: engine + interconnect + one Node per processor.
// Protocols receive a reference to the whole Machine; since exactly one
// simulation activity runs at any instant, protocol handlers may touch any
// node's protocol state directly (the *timing* of remote effects is what
// the message fabric models).
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/pagestore.hpp"
#include "net/mesh.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/processor.hpp"

namespace aecdsm::trace {
class Recorder;
}

namespace aecdsm::dsm {

class Protocol;
class Context;

/// Everything one simulated workstation owns.
struct Node {
  std::unique_ptr<sim::Processor> proc;
  std::unique_ptr<mem::PageStore> store;
  std::unique_ptr<mem::CacheModel> cache;
  std::unique_ptr<mem::TlbModel> tlb;
  std::unique_ptr<mem::WriteBuffer> wb;
  std::unique_ptr<Protocol> protocol;
  std::unique_ptr<Context> ctx;
  FaultStats faults;
};

class Machine {
 public:
  Machine(const SystemParams& params, std::size_t max_shared_bytes);
  ~Machine();

  const SystemParams& params() const { return params_; }
  sim::Engine& engine() { return engine_; }
  net::MeshNetwork& network() { return net_; }
  net::Transport& transport() { return transport_; }
  const net::Transport& transport() const { return transport_; }

  int nprocs() const { return params_.num_procs; }
  Node& node(ProcId p) { return nodes_[static_cast<std::size_t>(p)]; }
  const Node& node(ProcId p) const { return nodes_[static_cast<std::size_t>(p)]; }

  std::size_t num_pages() const { return num_pages_; }

  /// Page-aligned bump allocation in the global shared address space.
  /// Must be called before the run starts (all nodes see the same layout).
  GAddr alloc_shared(std::size_t bytes);

  /// Total bytes allocated so far.
  std::size_t shared_bytes_used() const { return alloc_cursor_; }

  // --- Message fabric -------------------------------------------------------
  //
  // Send a protocol message. At arrival the destination node is occupied for
  // `service_cost` cycles (plus an interrupt), accounted to its ipc bucket;
  // `handler` then runs engine-side at the service completion time. Rides
  // the reliable transport: under fault injection the message is delivered
  // exactly once, in per-channel order, via retransmission if needed.
  // The *sender-side* software overhead (params.message_overhead) must be
  // charged by the caller: application threads charge it via advance();
  // engine-side handlers fold it into their own service_cost.
  void post(ProcId from, ProcId to, std::size_t bytes, Cycles service_cost,
            std::function<void()> handler);

  /// Like post(), but the delivery and the serviced handler both run as
  /// exclusive events under the parallel engine (Engine::schedule_exclusive):
  /// protocol handlers that mutate state owned by other nodes — e.g. a
  /// barrier completion resetting every lock manager's records — must see
  /// no event anywhere in the machine executing past them. Identical to
  /// post() under the sequential engine.
  void post_exclusive(ProcId from, ProcId to, std::size_t bytes,
                      Cycles service_cost, std::function<void()> handler);

  /// Like post(), but best-effort: under fault injection the message may be
  /// dropped, duplicated, delayed or reordered, and is neither acknowledged
  /// nor retransmitted. Used for AEC's LAP update pushes, which the protocol
  /// can recover from lazily (section 3.4).
  void post_best_effort(ProcId from, ProcId to, std::size_t bytes,
                        Cycles service_cost, std::function<void()> handler);

  /// Home node of a lock's manager: static distribution (as in TreadMarks)
  /// unless a crash failover re-elected a surviving manager for the lock.
  ProcId lock_manager(LockId lock) const {
    if (!mgr_override_.empty()) {
      const auto it = mgr_override_.find(lock);
      if (it != mgr_override_.end()) return it->second;
    }
    return static_cast<ProcId>(lock % static_cast<LockId>(params_.num_procs));
  }

  /// Re-point a lock's manager after failover. May only be called from an
  /// exclusive event (the table is read concurrently by every node under
  /// the parallel engine; mutations must run solo).
  void set_lock_manager_override(LockId lock, ProcId mgr) {
    mgr_override_[lock] = mgr;
  }

  /// Node hosting the barrier manager.
  ProcId barrier_manager() const { return 0; }

  // --- Tracing --------------------------------------------------------------

  /// Attach (or detach, with nullptr) a trace sink for the whole machine:
  /// every processor, the transport, and all protocol/context hook points
  /// observe through this pointer. Purely observational — attaching a
  /// recorder never perturbs simulated timing.
  void set_recorder(trace::Recorder* rec);
  trace::Recorder* recorder() const { return recorder_; }

  // --- Run-wide synchronization accounting (fed by Context) ----------------
  // Sharded per acquiring node so parallel engine workers never share a
  // counter; the getters aggregate. Barrier episodes are counted by node 0
  // only (and read cross-node only by the recorder, which forces the
  // sequential engine), so a single counter stays race-free.
  void note_lock_acquire(ProcId self, LockId lock) {
    sync_shards_[static_cast<std::size_t>(self)].seen.insert(lock);
    ++sync_shards_[static_cast<std::size_t>(self)].acquires;
  }
  void note_barrier_episode() { ++barrier_episodes_; }
  std::uint64_t lock_acquires() const {
    std::uint64_t total = 0;
    for (const SyncShard& s : sync_shards_) total += s.acquires;
    return total;
  }
  std::uint64_t distinct_locks() const {
    std::set<LockId> all;
    for (const SyncShard& s : sync_shards_) all.insert(s.seen.begin(), s.seen.end());
    return all.size();
  }
  std::uint64_t barrier_episodes() const { return barrier_episodes_; }

 private:
  SystemParams params_;
  sim::Engine engine_;
  net::MeshNetwork net_;
  net::Transport transport_;
  std::vector<Node> nodes_;
  std::size_t num_pages_;
  std::size_t alloc_cursor_ = 0;

  trace::Recorder* recorder_ = nullptr;

  struct alignas(64) SyncShard {
    std::uint64_t acquires = 0;
    std::set<LockId> seen;
  };
  std::vector<SyncShard> sync_shards_;
  std::uint64_t barrier_episodes_ = 0;

  /// Crash-failover manager re-elections (empty unless a manager crashed).
  std::unordered_map<LockId, ProcId> mgr_override_;
};

}  // namespace aecdsm::dsm
