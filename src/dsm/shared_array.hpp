// Typed view over a shared allocation — the idiomatic way applications
// declare their shared data structures.
#pragma once

#include <cstddef>

#include "common/check.hpp"
#include "dsm/context.hpp"
#include "dsm/machine.hpp"

namespace aecdsm::dsm {

template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  /// Allocate `count` elements in `m`'s shared arena (setup phase only).
  static SharedArray alloc(Machine& m, std::size_t count) {
    SharedArray a;
    a.base_ = m.alloc_shared(count * sizeof(T));
    a.count_ = count;
    return a;
  }

  std::size_t size() const { return count_; }
  GAddr addr(std::size_t i) const {
    AECDSM_CHECK_MSG(i < count_, "SharedArray index " << i << " out of " << count_);
    return base_ + i * sizeof(T);
  }

  T get(Context& ctx, std::size_t i) const { return ctx.read<T>(addr(i)); }
  void put(Context& ctx, std::size_t i, T v) const { ctx.write<T>(addr(i), v); }

 private:
  GAddr base_ = 0;
  std::size_t count_ = 0;
};

}  // namespace aecdsm::dsm
