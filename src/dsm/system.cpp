#include "dsm/system.hpp"

#include <chrono>
#include <sstream>

#include "common/check.hpp"
#include "dsm/context.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::dsm {

void init_round_robin_validity(Machine& m, ProcId self) {
  const int n = m.nprocs();
  for (PageId pg = 0; pg < m.num_pages(); ++pg) {
    if (static_cast<ProcId>(pg % static_cast<PageId>(n)) == self) {
      m.node(self).store->frame(pg).valid = true;
    }
  }
}

RunStats run_app(App& app, const ProtocolSuite& suite, const RunConfig& config) {
  Machine m(config.params, app.shared_bytes());
  if (config.recorder != nullptr) m.set_recorder(config.recorder);
  if (config.engine_threads > 1 && config.recorder == nullptr) {
    net::MeshNetwork& mesh = m.network();
    m.engine().enable_parallel(
        config.engine_threads, config.params.num_procs,
        mesh.min_cross_latency(),
        [&mesh](int src, int dst, std::size_t bytes, Cycles t_send) {
          return mesh.resolve_send(src, dst, bytes, t_send);
        },
        [&mesh](std::size_t bytes) { mesh.note_local_send(bytes); });
  }
  app.setup(m);

  for (int p = 0; p < m.nprocs(); ++p) {
    Node& node = m.node(p);
    node.protocol = suite.make(m, p);
    node.ctx = std::make_unique<Context>(m, p, config.seed);
  }
  if (config.params.faults.crash_scheduled()) {
    // Wire the fail-stop crash plane: application-thread resumes gate on the
    // node's crash windows, and retransmit exhaustion toward a crashed node
    // raises the protocol's suspect hook. None of this exists in crash-free
    // runs, which stay byte-identical to builds without the crash plane.
    net::Transport& tr = m.transport();
    net::FaultPlane& plane = tr.plane();
    for (int p = 0; p < m.nprocs(); ++p) {
      m.node(p).proc->set_crash_hold([&plane, p](Cycles t) -> Cycles {
        return plane.crashed(p, t) ? plane.crash_end(p, t) : 0;
      });
    }
    tr.set_suspect_handler([&m](ProcId src, ProcId dst) {
      m.node(src).protocol->on_peer_suspect(dst);
    });
    // Warm reboot: at each window's end the node replays its in-flight
    // manager traffic (replies addressed to it during the window died at
    // its NIC and were cancelled by the sender's suspect verdict).
    for (const FaultWindow& w : config.params.faults.crashes) {
      if (w.node == kNoProc || w.cycles == 0) continue;
      m.engine().schedule_for(w.node, w.end(), [&m, node = w.node] {
        m.node(node).protocol->on_recover();
      });
    }
    if (config.recorder != nullptr) {
      // The crash schedule is known up front; stamp its instants directly
      // (recording never schedules events or perturbs timing).
      for (const FaultWindow& w : config.params.faults.crashes) {
        if (w.node == kNoProc || w.cycles == 0) continue;
        config.recorder->instant(w.node, trace::Category::kNet,
                                 trace::names::kNodeCrash, w.at_cycle);
        config.recorder->instant(w.node, trace::Category::kNet,
                                 trace::names::kNodeRecover, w.end());
      }
    }
  }
  for (int p = 0; p < m.nprocs(); ++p) {
    Node& node = m.node(p);
    node.proc->start([&app, &node] { app.body(*node.ctx); });
  }

  if (config.wall_timeout_sec > 0.0) {
    m.engine().set_wall_deadline(
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(
            static_cast<std::int64_t>(config.wall_timeout_sec * 1e6)));
  }
  m.engine().run();

  // An empty event queue with unfinished processors is a protocol deadlock.
  std::ostringstream stuck;
  bool all_done = true;
  for (int p = 0; p < m.nprocs(); ++p) {
    if (!m.node(p).proc->finished()) {
      all_done = false;
      stuck << " p" << p << (m.node(p).proc->blocked() ? "(blocked)" : "(runnable)");
    }
  }
  AECDSM_CHECK_MSG(all_done, "simulation deadlock under " << suite.name << "/"
                                                          << app.name() << ":" << stuck.str());

  RunStats out;
  out.protocol = suite.name;
  out.app = app.name();
  out.num_procs = m.nprocs();
  out.per_proc.reserve(static_cast<std::size_t>(m.nprocs()));
  for (int p = 0; p < m.nprocs(); ++p) {
    const Node& node = m.node(p);
    out.per_proc.push_back(node.proc->acct());
    out.finish_time = std::max(out.finish_time, node.proc->finish_time());
    out.faults += node.faults;
    out.diffs += node.protocol->diff_stats();
    out.lockmgr += node.protocol->lockmgr_stats();
  }
  out.msgs = m.network().stats();
  out.transport = m.transport().stats();
  out.recovery = m.transport().recovery();
  out.sync.lock_acquires = m.lock_acquires();
  out.sync.distinct_locks = m.distinct_locks();
  out.sync.barrier_events = m.barrier_episodes();
  out.engine_events = m.engine().events_processed();
  out.result_valid = app.ok();
  return out;
}

}  // namespace aecdsm::dsm
