// SPMD application interface. An App allocates its shared data during
// setup(), runs the same body() on every simulated processor, and validates
// its results against a sequential oracle (the validation itself runs
// inside the simulation — usually on processor 0 after the final barrier —
// so a protocol that corrupts data fails the check).
#pragma once

#include <string>

#include "common/stats.hpp"
#include "dsm/context.hpp"
#include "dsm/machine.hpp"

namespace aecdsm::dsm {

class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;

  /// Upper bound on shared-arena bytes this app will allocate.
  virtual std::size_t shared_bytes() const = 0;

  /// Allocate shared structures and compute the sequential oracle.
  virtual void setup(Machine& m) = 0;

  /// SPMD body, executed by every simulated processor.
  virtual void body(Context& ctx) = 0;

  /// Did the parallel run produce the oracle's answer? Valid after the run.
  virtual bool ok() const = 0;
};

}  // namespace aecdsm::dsm
