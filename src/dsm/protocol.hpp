// Coherence-protocol interface. One Protocol instance runs per node; the
// instances of a run share manager state through the Machine they are
// attached to (handlers execute engine-side, one at a time, so no host
// locking is needed).
#pragma once

#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace aecdsm::policy {
struct ConsistencyPolicy;
}  // namespace aecdsm::policy

namespace aecdsm::dsm {

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  // All hooks below run on the owning processor's application thread.

  /// Make `page` valid for reading. Charged to the data bucket.
  virtual void on_read_fault(PageId page) = 0;

  /// Make `page` valid and writable (twin discipline is protocol policy).
  virtual void on_write_fault(PageId page) = 0;

  /// Lock acquire: returns once the calling processor owns the lock.
  virtual void acquire(LockId lock) = 0;

  /// Lock release.
  virtual void release(LockId lock) = 0;

  /// Global barrier: returns once every processor has arrived and the
  /// protocol's coherence actions for the episode are complete.
  virtual void barrier() = 0;

  /// Advance notice that this processor intends to acquire `lock` soon
  /// (feeds AEC's virtual queue; other protocols may ignore it).
  virtual void acquire_notice(LockId lock) { (void)lock; }

  /// First access to `page` by this processor in the current barrier step
  /// (metadata-only hook on the fast path — must not sync or block).
  virtual void on_page_access(PageId page) { (void)page; }

  /// The reliable transport suspects `peer` has fail-stop crashed (a crash
  /// window is active and suspect_after retransmits went unacknowledged).
  /// Runs engine-side at this node, in the retransmit-timer context; lock
  /// managers use it to start failover. Default: ignore.
  virtual void on_peer_suspect(ProcId peer) { (void)peer; }

  /// This node's fail-stop crash window just ended (warm reboot). Runs
  /// engine-side at this node, scheduled at the window's end cycle; the
  /// protocol re-aims and replays whatever manager-directed traffic was in
  /// flight when the node died — ops aimed at this node's own pre-crash
  /// managership have no surviving sender to chase the re-elected manager,
  /// and re-election broadcasts sent during the window skipped this node.
  /// Default: ignore.
  virtual void on_recover() {}

  /// Twin/diff machinery statistics accumulated by this node (Table 4).
  virtual DiffStats diff_stats() const { return {}; }

  /// Lock-strategy counters accumulated by this node's shard (grants and
  /// handoffs it managed, direct handoffs it received). All-zero unless the
  /// protocol collects them (non-central strategy or locks.collect_stats).
  virtual LockMgrStats lockmgr_stats() const { return {}; }

  /// The consistency policy this instance executes, when it is driven by
  /// the policy engine; nullptr for policy-unaware implementations (tests'
  /// hand-built protocols).
  virtual const policy::ConsistencyPolicy* active_policy() const {
    return nullptr;
  }
};

}  // namespace aecdsm::dsm
