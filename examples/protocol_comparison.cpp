// Protocol comparison: run the paper's application suite under AEC,
// AEC-without-LAP and TreadMarks, and print the relative execution times —
// a compact, self-served version of the paper's headline evaluation.
//
//   ./build/examples/protocol_comparison [small|default]
#include <cstdio>
#include <cstring>

#include "harness/runner.hpp"

using namespace aecdsm;

int main(int argc, char** argv) {
  const apps::Scale scale = (argc > 1 && std::strcmp(argv[1], "small") == 0)
                                ? apps::Scale::kSmall
                                : apps::Scale::kDefault;
  const SystemParams params = harness::paper_params();

  std::printf("%-12s %14s %14s %14s %10s\n", "application", "TreadMarks(M)", "AEC-noLAP(M)",
              "AEC(M)", "AEC/TM");
  for (const std::string& app : apps::app_names()) {
    const auto tm = harness::run_experiment("TreadMarks", app, scale, params);
    const auto nolap = harness::run_experiment("AEC-noLAP", app, scale, params);
    const auto aec = harness::run_experiment("AEC", app, scale, params);
    std::printf("%-12s %14.2f %14.2f %14.2f %9.0f%%\n", app.c_str(),
                tm.stats.finish_time / 1e6, nolap.stats.finish_time / 1e6,
                aec.stats.finish_time / 1e6,
                static_cast<double>(aec.stats.finish_time) /
                    static_cast<double>(tm.stats.finish_time) * 100.0);
  }
  std::printf("\n(M = millions of simulated 10ns cycles; lower is better.\n"
              " AEC/TM mirrors the paper's figures 5-6: AEC wins everywhere,\n"
              " most on the lock-intensive applications.)\n");
  return 0;
}
