// Using the LAP predictor as a standalone library: feed it a synthetic
// lock-transfer history (a migratory token passing between a producer pair
// with occasional interlopers) and watch the three low-level techniques —
// waiting queue, virtual queue, transfer affinity — combine into the
// update-set prediction of paper §2.2.
//
//   ./build/examples/lock_prediction
#include <cstdio>

#include "aec/lap.hpp"
#include "common/rng.hpp"

using namespace aecdsm;

namespace {

void show_set(const char* label, const std::vector<ProcId>& set) {
  std::printf("%-24s {", label);
  for (std::size_t i = 0; i < set.size(); ++i) {
    std::printf("%s%d", i == 0 ? "" : ", ", set[i]);
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  constexpr int kProcs = 8;
  aec::LockLap lap(kProcs, /*update_set_size=*/2, /*affinity_threshold=*/0.6);
  Rng rng(2026);

  // A migratory token: processors 2 and 5 exchange the lock most of the
  // time; occasionally another processor takes a turn.
  ProcId owner = 2;
  for (int i = 0; i < 200; ++i) {
    ProcId next;
    if (rng.next_below(10) < 8) {
      next = owner == 2 ? 5 : 2;
    } else {
      next = static_cast<ProcId>(rng.next_below(kProcs));
      if (next == owner) next = static_cast<ProcId>((next + 1) % kProcs);
    }
    lap.compute_update_set(owner);  // manager-side snapshot at the grant
    lap.record_transfer(owner, next);
    owner = next;
  }

  std::printf("after 200 transfers of a mostly 2<->5 migratory lock:\n\n");
  show_set("affinity set of p2:", lap.affinity_set(2));
  show_set("affinity set of p5:", lap.affinity_set(5));
  show_set("update set U(p2):", lap.compute_update_set(2));

  std::printf("\nwith a waiter queued (p7), the queue head wins (paper step 1):\n");
  lap.enqueue_waiter(7);
  show_set("update set U(p2):", lap.compute_update_set(2));
  lap.dequeue_waiter();

  std::printf("\nwith acquire notices from p1 and p4 (virtual queue):\n");
  lap.add_notice(1);
  lap.add_notice(4);
  show_set("update set U(p6):", lap.compute_update_set(6));

  std::printf("\nmeasured success of each technique on the history so far:\n");
  const aec::LapScores& s = lap.scores();
  std::printf("  LAP             %5.1f%%\n", s.lap.rate() * 100.0);
  std::printf("  waitQ           %5.1f%%\n", s.waitq.rate() * 100.0);
  std::printf("  waitQ+affinity  %5.1f%%\n", s.waitq_affinity.rate() * 100.0);
  std::printf("  waitQ+virtualQ  %5.1f%%\n", s.waitq_virtualq.rate() * 100.0);
  return 0;
}
