// Quickstart: a minimal SPMD program on the AEC distributed shared memory.
//
// Sixteen simulated workstations increment a lock-protected counter and
// fill per-processor slices of a shared vector, synchronize at a barrier,
// and processor 0 validates the result. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "aec/suite.hpp"
#include "apps/app_common.hpp"
#include "dsm/shared_array.hpp"
#include "dsm/system.hpp"

using namespace aecdsm;

namespace {

/// Every application implements dsm::App: allocate shared state in setup(),
/// run the same body() on every simulated processor, report a verdict.
class HelloDsm : public apps::AppBase {
 public:
  std::string name() const override { return "quickstart"; }
  std::size_t shared_bytes() const override { return 64 * 1024; }

  void setup(dsm::Machine& m) override {
    counter_ = dsm::SharedArray<std::uint64_t>::alloc(m, 1);
    vec_ = dsm::SharedArray<std::uint64_t>::alloc(m, 1024);
  }

  void body(dsm::Context& ctx) override {
    const int me = ctx.pid();
    const std::size_t chunk = vec_.size() / static_cast<std::size_t>(ctx.nprocs());

    // Unsynchronized writes to a private slice (coherence at the barrier).
    for (std::size_t i = 0; i < chunk; ++i) {
      vec_.put(ctx, static_cast<std::size_t>(me) * chunk + i,
               static_cast<std::uint64_t>(me) * 1000 + i);
    }

    // A lock-protected read-modify-write (coherence through the lock).
    ctx.lock(0);
    counter_.put(ctx, 0, counter_.get(ctx, 0) + 1);
    ctx.unlock(0);

    // Model some local computation (cycles of private work).
    ctx.compute(5000);

    ctx.barrier();

    if (me == 0) {
      bool good = counter_.get(ctx, 0) == static_cast<std::uint64_t>(ctx.nprocs());
      for (int p = 0; p < ctx.nprocs() && good; ++p) {
        const std::size_t base = static_cast<std::size_t>(p) * chunk;
        for (std::size_t i = 0; i < chunk; i += 97) {
          if (vec_.get(ctx, base + i) != static_cast<std::uint64_t>(p) * 1000 + i) {
            good = false;
          }
        }
      }
      set_ok(good);
    }
  }

 private:
  dsm::SharedArray<std::uint64_t> counter_;
  dsm::SharedArray<std::uint64_t> vec_;
};

}  // namespace

int main() {
  HelloDsm app;
  aec::AecSuite suite;  // the paper's protocol, LAP enabled
  dsm::RunConfig cfg;   // Table 1 defaults: 16 processors, 4x4 mesh

  const RunStats stats = dsm::run_app(app, suite.suite(), cfg);

  std::printf("result: %s\n", stats.result_valid ? "correct" : "WRONG");
  std::printf("simulated time: %.2f Mcycles (%.2f ms at 100 MHz)\n",
              stats.finish_time / 1e6, stats.finish_time / 1e5 / 1000.0);
  std::printf("messages: %llu (%.1f KB)\n",
              static_cast<unsigned long long>(stats.msgs.messages),
              static_cast<double>(stats.msgs.bytes) / 1024.0);
  std::printf("faults: %llu, diffs created: %llu, diffs applied: %llu\n",
              static_cast<unsigned long long>(stats.faults.read_faults +
                                              stats.faults.write_faults),
              static_cast<unsigned long long>(stats.diffs.diffs_created),
              static_cast<unsigned long long>(stats.diffs.diffs_applied));
  const TimeBreakdown agg = stats.aggregate();
  const double total = static_cast<double>(agg.total());
  std::printf("time breakdown: busy %.1f%%  data %.1f%%  synch %.1f%%  ipc %.1f%%\n",
              agg.busy / total * 100.0, agg.data / total * 100.0,
              agg.synch / total * 100.0, agg.ipc / total * 100.0);
  return stats.result_valid ? 0 : 1;
}
