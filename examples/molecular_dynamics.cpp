// Domain scenario: molecular dynamics on software DSM — the workload class
// the paper's introduction motivates. Runs Water-nsquared at a configurable
// scale under AEC, prints the execution-time breakdown and the per-variable
// LAP prediction quality (how well the protocol anticipated the molecule
// locks' transfer order).
//
//   ./build/examples/molecular_dynamics [molecules] [steps]
#include <cstdio>
#include <cstdlib>

#include "aec/suite.hpp"
#include "apps/water_ns.hpp"
#include "dsm/system.hpp"
#include "harness/format.hpp"
#include "harness/lap_report.hpp"

using namespace aecdsm;

int main(int argc, char** argv) {
  apps::WaterNsConfig cfg;
  if (argc > 1) cfg.molecules = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) cfg.steps = std::atoi(argv[2]);

  apps::WaterNsApp app(cfg);
  aec::AecSuite suite;
  dsm::RunConfig rc;  // 16 simulated processors, Table 1 constants
  const RunStats stats = dsm::run_app(app, suite.suite(), rc);

  std::printf("Water-nsquared: %zu molecules, %d steps, %d processors — %s\n",
              cfg.molecules, cfg.steps, stats.num_procs,
              stats.result_valid ? "validated against the sequential oracle"
                                 : "VALIDATION FAILED");
  std::printf("simulated time %.2f Mcycles, %llu lock acquires over %llu locks, "
              "%llu barriers\n\n",
              stats.finish_time / 1e6,
              static_cast<unsigned long long>(stats.sync.lock_acquires),
              static_cast<unsigned long long>(stats.sync.distinct_locks),
              static_cast<unsigned long long>(stats.sync.barrier_events));

  harness::print_breakdown_figure(
      std::cout, "Execution time breakdown",
      {{"AEC", stats.aggregate(), stats.finish_time}});

  harness::ExperimentResult detail;
  detail.stats = stats;
  detail.aec = suite.shared_handle();
  const auto scores = harness::lap_scores_of(detail);
  const auto rows = harness::lap_rows(
      scores, {{"global sums", static_cast<LockId>(cfg.molecules),
                static_cast<LockId>(cfg.molecules + 5)},
               {"molecule locks", 0, static_cast<LockId>(cfg.molecules - 1)}});
  std::printf("\n");
  harness::print_lap_table(std::cout, "Water-ns", rows);
  return stats.result_valid ? 0 : 1;
}
